//! Figure 4: why the knobs need tuning — VGG16 on MXNet PS TCP under
//! FIFO scheduling, sweeping (a) the partition size and (b) the credit
//! size, at 1 Gbps and 10 Gbps.
//!
//! The paper's reading: partition size matters much more at higher
//! bandwidth (per-partition overhead is a larger fraction of wire time),
//! P3's default 160 KB is far from optimal at 10 Gbps, and credit size has
//! its own sweet spot.

use bs_runtime::{run, SchedulerKind};
use serde::Serialize;

use crate::fidelity::Fidelity;
use crate::report::{fmt_speed, Table};
use crate::setups::Setup;

/// One sweep point.
#[derive(Clone, Debug, Serialize)]
pub struct SweepPoint {
    /// Knob value in KB.
    pub kb: u64,
    /// Bandwidth in Gbps.
    pub gbps: f64,
    /// Measured speed (images/sec).
    pub speed: f64,
}

/// Full result: both panels.
#[derive(Clone, Debug, Serialize)]
pub struct Fig04 {
    /// Panel (a): FIFO + partitioning, speed vs partition size.
    pub partition_sweep: Vec<SweepPoint>,
    /// Panel (b): FIFO + credit, speed vs credit size (partition fixed at
    /// P3's 160 KB, as the paper's "credit = partition" framing implies).
    pub credit_sweep: Vec<SweepPoint>,
}

/// Partition sizes swept, KB (the paper's x-axis spans ~100–800 KB; we
/// extend to both sides to expose the full rise-and-fall: tiny partitions
/// drown in per-message overhead, huge ones forfeit the duplex
/// pipelining that partitioning exists to buy).
pub const PARTITION_KB: [u64; 9] = [64, 128, 160, 256, 384, 512, 768, 2048, 8192];
/// Credit sizes swept, KB.
pub const CREDIT_KB: [u64; 7] = [160, 240, 320, 480, 640, 960, 1440];
/// Bandwidths, Gbps.
pub const BANDWIDTHS: [f64; 2] = [1.0, 10.0];

/// Runs both sweeps on 4 machines (32 GPUs).
pub fn run_experiment(fid: Fidelity) -> Fig04 {
    let jobs_a: Vec<(u64, f64)> = PARTITION_KB
        .iter()
        .flat_map(|&kb| BANDWIDTHS.iter().map(move |&b| (kb, b)))
        .collect();
    let partition_sweep = crate::parallel::parallel_map(jobs_a, |&(kb, gbps)| {
        let mut cfg = Setup::MxnetPsTcp.config(
            bs_models::zoo::vgg16(),
            32,
            gbps,
            SchedulerKind::FifoPartitioned {
                partition: kb * 1024,
            },
        );
        fid.apply(&mut cfg);
        SweepPoint {
            kb,
            gbps,
            speed: run(&cfg).speed,
        }
    });
    let jobs_b: Vec<(u64, f64)> = CREDIT_KB
        .iter()
        .flat_map(|&kb| BANDWIDTHS.iter().map(move |&b| (kb, b)))
        .collect();
    let credit_sweep = crate::parallel::parallel_map(jobs_b, |&(kb, gbps)| {
        let mut cfg = Setup::MxnetPsTcp.config(
            bs_models::zoo::vgg16(),
            32,
            gbps,
            SchedulerKind::FifoCredit {
                partition: 160 * 1024,
                credit: kb * 1024,
            },
        );
        fid.apply(&mut cfg);
        SweepPoint {
            kb,
            gbps,
            speed: run(&cfg).speed,
        }
    });
    Fig04 {
        partition_sweep,
        credit_sweep,
    }
}

fn panel(title: &str, knob: &str, points: &[SweepPoint]) -> String {
    let mut t = Table::new(title, &[knob, "1 Gbps", "10 Gbps"]);
    let mut kbs: Vec<u64> = points.iter().map(|p| p.kb).collect();
    kbs.sort_unstable();
    kbs.dedup();
    for kb in kbs {
        let at = |g: f64| {
            points
                .iter()
                .find(|p| p.kb == kb && p.gbps == g)
                .map(|p| fmt_speed(p.speed))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![format!("{kb} KB"), at(1.0), at(10.0)]);
    }
    t.render()
}

/// Renders both panels.
pub fn render(r: &Fig04) -> String {
    format!(
        "{}\n{}",
        panel(
            "Figure 4(a) — VGG16, MXNet PS TCP, FIFO: speed vs partition size",
            "partition",
            &r.partition_sweep
        ),
        panel(
            "Figure 4(b) — same, FIFO + credit: speed vs credit size",
            "credit",
            &r.credit_sweep
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_size_matters_more_at_high_bandwidth() {
        let r = run_experiment(Fidelity::quick());
        let spread = |gbps: f64| {
            let speeds: Vec<f64> = r
                .partition_sweep
                .iter()
                .filter(|p| p.gbps == gbps)
                .map(|p| p.speed)
                .collect();
            let max = speeds.iter().cloned().fold(f64::MIN, f64::max);
            let min = speeds.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / max
        };
        // §2.3: "the partition size affects training speed, especially in
        // networks with larger bandwidth".
        assert!(
            spread(10.0) > spread(1.0),
            "10G spread {:.3} must exceed 1G spread {:.3}",
            spread(10.0),
            spread(1.0)
        );
    }

    #[test]
    fn smallest_partition_is_not_optimal_at_10g() {
        let r = run_experiment(Fidelity::quick());
        let at = |kb: u64| {
            r.partition_sweep
                .iter()
                .find(|p| p.kb == kb && p.gbps == 10.0)
                .unwrap()
                .speed
        };
        let best = PARTITION_KB.iter().map(|&k| at(k)).fold(f64::MIN, f64::max);
        assert!(
            at(64) < best * 0.995,
            "64 KB ({}) should trail the best ({best})",
            at(64)
        );
    }
}
