//! The paper's five evaluated system setups (§6.1).

use bs_engine::EngineConfig;
use bs_models::DnnModel;
use bs_net::{NetConfig, Transport};
use bs_runtime::{Arch, SchedulerKind, WorldConfig};
use bs_tune::SearchSpace;
use serde::Serialize;

/// GPUs per machine on the paper's testbed.
pub const GPUS_PER_MACHINE: u64 = 8;

/// One of the paper's framework × architecture × transport combinations.
/// ("Due to space limit, we only show results in 5 setups" — these five.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Setup {
    /// MXNet, parameter server, TCP — the only setup P3 supports.
    MxnetPsTcp,
    /// MXNet, parameter server, RDMA.
    MxnetPsRdma,
    /// TensorFlow, parameter server, TCP (global barrier).
    TfPsTcp,
    /// MXNet, Horovod/NCCL all-reduce, RDMA.
    MxnetNcclRdma,
    /// PyTorch, Horovod/NCCL all-reduce, TCP (global barrier).
    PytorchNcclTcp,
}

impl Setup {
    /// All five, in the paper's panel order (a)–(e).
    pub fn all() -> [Setup; 5] {
        [
            Setup::MxnetPsTcp,
            Setup::MxnetPsRdma,
            Setup::TfPsTcp,
            Setup::MxnetNcclRdma,
            Setup::PytorchNcclTcp,
        ]
    }

    /// Display label matching the paper's sub-captions.
    pub fn label(self) -> &'static str {
        match self {
            Setup::MxnetPsTcp => "MXNet, PS, TCP",
            Setup::MxnetPsRdma => "MXNet, PS, RDMA",
            Setup::TfPsTcp => "TensorFlow, PS, TCP",
            Setup::MxnetNcclRdma => "MXNet, NCCL, RDMA",
            Setup::PytorchNcclTcp => "PyTorch, NCCL, TCP",
        }
    }

    /// Whether this is a parameter-server setup (as opposed to all-reduce).
    pub fn is_ps(self) -> bool {
        matches!(
            self,
            Setup::MxnetPsTcp | Setup::MxnetPsRdma | Setup::TfPsTcp
        )
    }

    /// The transport in use. PS setups ride the ps-lite RPC stack
    /// (CPU-capped TCP); the NCCL TCP setup uses NCCL's multi-socket
    /// transport with a higher ceiling.
    pub fn transport(self) -> Transport {
        match self {
            Setup::MxnetPsTcp | Setup::TfPsTcp => Transport::tcp(),
            Setup::PytorchNcclTcp => Transport::tcp_nccl(),
            Setup::MxnetPsRdma | Setup::MxnetNcclRdma => Transport::rdma(),
        }
    }

    /// The simulated engine flavour.
    pub fn engine(self) -> EngineConfig {
        match self {
            Setup::MxnetPsTcp | Setup::MxnetPsRdma => EngineConfig::mxnet_ps(),
            Setup::TfPsTcp => EngineConfig::tensorflow_ps(),
            Setup::MxnetNcclRdma => EngineConfig::mxnet_allreduce(),
            Setup::PytorchNcclTcp => EngineConfig::pytorch_allreduce(),
        }
    }

    /// Workers needed for a GPU count: PS counts 8-GPU machines,
    /// all-reduce counts single-GPU ranks (§6.1).
    pub fn workers_for_gpus(self, gpus: u64) -> usize {
        if self.is_ps() {
            assert!(
                gpus.is_multiple_of(GPUS_PER_MACHINE),
                "PS runs need whole machines (multiples of {GPUS_PER_MACHINE} GPUs)"
            );
            (gpus / GPUS_PER_MACHINE) as usize
        } else {
            gpus as usize
        }
    }

    /// The gradient-synchronisation architecture for `gpus` total GPUs.
    ///
    /// Baseline placement is transport-specific, mirroring the paper's
    /// software stacks: the TCP path is upstream ps-lite/MXNet, whose
    /// big-array bound slices large tensors across shards (balanced);
    /// the RDMA path is the authors' in-house ps-lite port (§5 "we added
    /// RDMA support to ps-lite"), modelled with the naive whole-tensor
    /// round-robin placement whose load imbalance §6.2 reports.
    pub fn arch(self, gpus: u64) -> Arch {
        if self.is_ps() {
            let workers = self.workers_for_gpus(gpus);
            Arch::Ps {
                mode: bs_comm::PsMode::Synchronous,
                num_servers: workers,
                baseline_bigarray_split: matches!(self, Setup::MxnetPsTcp | Setup::TfPsTcp),
            }
        } else {
            Arch::allreduce()
        }
    }

    /// The (δ, c) search space appropriate for this setup's architecture.
    pub fn search_space(self) -> SearchSpace {
        if self.is_ps() {
            SearchSpace::ps()
        } else {
            SearchSpace::allreduce()
        }
    }

    /// Builds a full run configuration.
    pub fn config(
        self,
        model: DnnModel,
        gpus: u64,
        bandwidth_gbps: f64,
        scheduler: SchedulerKind,
    ) -> WorldConfig {
        WorldConfig::new(
            model,
            self.workers_for_gpus(gpus),
            self.arch(gpus),
            NetConfig::gbps(bandwidth_gbps, self.transport()),
            self.engine(),
            scheduler,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_setups_count_machines() {
        assert_eq!(Setup::MxnetPsTcp.workers_for_gpus(64), 8);
        assert_eq!(Setup::MxnetNcclRdma.workers_for_gpus(64), 64);
    }

    #[test]
    #[should_panic(expected = "whole machines")]
    fn partial_machines_rejected() {
        Setup::TfPsTcp.workers_for_gpus(12);
    }

    #[test]
    fn configs_carry_the_right_transport_and_engine() {
        let cfg = Setup::TfPsTcp.config(
            bs_models::zoo::resnet50(),
            16,
            100.0,
            SchedulerKind::Baseline,
        );
        assert_eq!(cfg.net.transport.name, "TCP");
        assert_eq!(cfg.engine, EngineConfig::tensorflow_ps());
        assert_eq!(cfg.total_gpus(), 16);
        let cfg = Setup::MxnetNcclRdma.config(
            bs_models::zoo::resnet50(),
            16,
            100.0,
            SchedulerKind::Baseline,
        );
        assert_eq!(cfg.net.transport.name, "RDMA");
        assert_eq!(cfg.num_workers, 16);
    }

    #[test]
    fn search_spaces_differ_by_architecture() {
        // Table 1: NCCL optima are an order of magnitude above PS ones;
        // the spaces must allow that.
        let ps = Setup::MxnetPsRdma.search_space();
        let ar = Setup::MxnetNcclRdma.search_space();
        assert!(ar.partition.1 > ps.partition.1);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = Setup::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
