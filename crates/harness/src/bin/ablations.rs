//! Runs the mechanism / credit / placement ablations. `BS_QUICK=1` smoke.

use bs_harness::experiments::ablations;
use bs_harness::{report, Fidelity};

fn main() {
    let r = ablations::run_experiment(Fidelity::from_env());
    print!("{}", ablations::render(&r));
    report::write_json("ablations", &r);
}
