//! Runs the robustness study: BS vs FIFO under the committed fault
//! fixture (degradation curve, graceful completion, §3.5 re-tune
//! trigger). `BS_QUICK=1` smoke.
//!
//! Like `--bin cluster`, the binary asserts its own headline claims on
//! every run — CI smoke failure means a real regression, not a stale
//! table.

use bs_harness::experiments::faults;
use bs_harness::{report, Fidelity};
use bs_runtime::RunOutcome;

fn main() {
    let r = faults::run_experiment(Fidelity::from_env());
    print!("{}", faults::render(&r));
    for row in &r.rows {
        assert!(
            !matches!(row.outcome, RunOutcome::Failed { .. }),
            "{} / {} / {} failed instead of degrading",
            row.fabric,
            row.condition,
            row.scheduler
        );
    }
    assert_eq!(
        r.drift.clean_drifts, 0,
        "clean run must not trigger re-tuning"
    );
    assert!(
        r.drift.faulted_drifts > 0,
        "the fixture's bandwidth shift must trigger re-tuning"
    );
    report::write_json("faults", &r);
}
