//! Regenerates Table 1 (best partition/credit sizes). `BS_QUICK=1` smoke.

use bs_harness::experiments::table1;
use bs_harness::{report, Fidelity};

fn main() {
    let r = table1::run_experiment(Fidelity::from_env());
    print!("{}", table1::render(&r));
    report::write_json("table1", &r);
}
