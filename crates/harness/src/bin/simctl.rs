//! `simctl` — run one training simulation from the command line.
//!
//! ```text
//! cargo run --release -p bs-harness --bin simctl -- \
//!     --model vgg16 --setup mxnet-ps-rdma --gpus 32 --gbps 100 \
//!     --scheduler bytescheduler --partition-mb 6 --credit-mb 21
//! ```
//!
//! Flags (all optional, shown with defaults):
//!
//! ```text
//! --model vgg16|vgg19|alexnet|resnet50|transformer|
//!         inception_v3|bert_base                     (vgg16)
//! --setup mxnet-ps-tcp|mxnet-ps-rdma|tf-ps-tcp|
//!         mxnet-nccl-rdma|pytorch-nccl-tcp           (mxnet-ps-rdma)
//! --gpus N                                           (32)
//! --gbps F                                           (100)
//! --scheduler baseline|p3|bytescheduler|tuned        (tuned)
//! --partition-mb F  --credit-mb F    (bytescheduler only)
//! --fabric fifo|fluid                                (fifo)
//! --iters N --warmup N --seed N --jitter F
//! --faults FILE     inject the fault plan in FILE (JSON per
//!                   results/fault_plan.schema.json): link degradations
//!                   and flaps, seeded transfer loss, stragglers; the
//!                   run's outcome line then reports Completed /
//!                   DegradedCompleted / Failed with retry counts
//! --trace FILE      write a chrome://tracing JSON of the run
//! --metrics FILE    record run telemetry: print the summary tables
//!                   (per-worker stall breakdown, per-lane credit
//!                   occupancy, per-NIC utilisation) and write the
//!                   machine-readable metrics.json to FILE ("-" prints
//!                   the tables only)
//! --xray FILE       record the causal event log: print the
//!                   critical-path attribution (per-category breakdown
//!                   summing exactly to the measured wall time, top-10
//!                   critical tensors) and write the schema-versioned
//!                   critical_path.json to FILE ("-" prints the tables
//!                   only)
//! --watch           attach the scope bus and print one live `watch`
//!                   line per iteration, retransmit, fault, and drift
//!                   detection as the simulation publishes them
//! --events FILE     attach the scope flight recorder and write the
//!                   run's full event stream as schema-versioned JSONL
//!                   (results/events.schema.json)
//! ```
//!
//! `--scheduler tuned` auto-tunes (δ, c) with BO before the measured run.

use bs_harness::{tune, Fidelity, Setup};
use bs_models::DnnModel;
use bs_net::FabricModel;
use bs_runtime::{run, run_observed, SchedulerKind};
use bs_scope::{FlightRecorder, ScopeBus, WatchTable};
use bs_tune::LiveDrift;

fn fail(msg: &str) -> ! {
    eprintln!("simctl: {msg}\nrun with no arguments for defaults; see the module docs for flags");
    std::process::exit(2);
}

struct Args(std::collections::HashMap<String, String>);

impl Args {
    fn parse() -> Args {
        let mut map = std::collections::HashMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                fail(&format!("expected --flag, got {flag:?}"));
            };
            if name == "watch" {
                map.insert(name.to_string(), "1".into());
                continue;
            }
            let Some(value) = it.next() else {
                fail(&format!("--{name} needs a value"));
            };
            map.insert(name.to_string(), value);
        }
        Args(map)
    }

    fn get(&self, name: &str, default: &str) -> String {
        self.0.get(name).cloned().unwrap_or_else(|| default.into())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.0.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| fail(&format!("--{name}: cannot parse {v:?}"))),
        }
    }
}

fn main() {
    let args = Args::parse();
    let model: DnnModel = match args.get("model", "vgg16").as_str() {
        "vgg16" => bs_models::zoo::vgg16(),
        "vgg19" => bs_models::zoo::vgg19(),
        "alexnet" => bs_models::zoo::alexnet(),
        "resnet50" => bs_models::zoo::resnet50(),
        "transformer" => bs_models::zoo::transformer(),
        "inception_v3" => bs_models::zoo::inception_v3(),
        "bert_base" => bs_models::zoo::bert_base(),
        other => fail(&format!("unknown model {other:?}")),
    };
    let setup = match args.get("setup", "mxnet-ps-rdma").as_str() {
        "mxnet-ps-tcp" => Setup::MxnetPsTcp,
        "mxnet-ps-rdma" => Setup::MxnetPsRdma,
        "tf-ps-tcp" => Setup::TfPsTcp,
        "mxnet-nccl-rdma" => Setup::MxnetNcclRdma,
        "pytorch-nccl-tcp" => Setup::PytorchNcclTcp,
        other => fail(&format!("unknown setup {other:?}")),
    };
    let gpus: u64 = args.num("gpus", 32);
    let gbps: f64 = args.num("gbps", 100.0);

    let mut cfg = setup.config(model, gpus, gbps, SchedulerKind::Baseline);
    cfg.iters = args.num("iters", Fidelity::full().iters);
    cfg.warmup = args.num("warmup", Fidelity::full().warmup);
    cfg.seed = args.num("seed", 1);
    cfg.jitter = args.num("jitter", 0.01);
    cfg.fabric = match args.get("fabric", "fifo").as_str() {
        "fifo" => FabricModel::SerialFifo,
        "fluid" => FabricModel::FairShare,
        other => fail(&format!("unknown fabric {other:?}")),
    };

    let mb = |f: f64| (f * 1e6) as u64;
    let sched_name = args.get("scheduler", "tuned");
    cfg.scheduler = match sched_name.as_str() {
        "baseline" => SchedulerKind::Baseline,
        "p3" => SchedulerKind::P3,
        "bytescheduler" => SchedulerKind::ByteScheduler {
            partition: mb(args.num("partition-mb", 4.0)),
            credit: mb(args.num("credit-mb", 16.0)),
        },
        "tuned" => {
            let out = tune(
                &cfg,
                setup.search_space(),
                args.num("trials", Fidelity::full().tune_trials),
                cfg.seed,
            );
            eprintln!(
                "tuned: partition {:.1} MB, credit {:.1} MB ({} trials)",
                out.partition as f64 / 1e6,
                out.credit as f64 / 1e6,
                out.trials
            );
            SchedulerKind::ByteScheduler {
                partition: out.partition,
                credit: out.credit,
            }
        }
        other => fail(&format!("unknown scheduler {other:?}")),
    };

    if let Some(path) = args.0.get("faults") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read fault plan {path}: {e}")));
        let plan = bs_faults::FaultPlan::from_json(&text)
            .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        cfg.faults = Some(plan);
    }

    let trace_path = args.0.get("trace").cloned();
    cfg.record_trace = trace_path.is_some();
    let metrics_path = args.0.get("metrics").cloned();
    cfg.record_metrics = metrics_path.is_some();
    let xray_path = args.0.get("xray").cloned();
    cfg.record_xray = xray_path.is_some();
    let watch = args.0.contains_key("watch");
    let events_path = args.0.get("events").cloned();

    let linear = cfg.linear_scaling_speed();
    let r = if watch || events_path.is_some() {
        let mut bus = ScopeBus::new();
        bus.subscribe(Box::new(LiveDrift::new(cfg.warmup)));
        if watch {
            bus.subscribe(Box::new(WatchTable::new()));
        }
        let flight = events_path.as_ref().map(|_| {
            let (rec, handle) = FlightRecorder::new();
            bus.subscribe(Box::new(rec));
            handle
        });
        let r = run_observed(&cfg, Some(&mut bus));
        if let (Some(path), Some(handle)) = (&events_path, &flight) {
            match std::fs::write(path, handle.to_jsonl()) {
                Ok(()) => println!("events      {:>12} rows -> {path}", handle.len()),
                Err(e) => eprintln!("simctl: cannot write events to {path}: {e}"),
            }
        }
        r
    } else {
        run(&cfg)
    };
    println!(
        "{} | {} | {} GPUs | {:.0} Gbps | {}",
        cfg.model.name,
        setup.label(),
        gpus,
        gbps,
        r.scheduler
    );
    println!(
        "speed       {:>12.0} {} ({:.1}% of linear {:.0})",
        r.speed,
        r.speed_unit,
        100.0 * r.speed / linear,
        linear
    );
    println!(
        "iteration   {:>12.2} ms (± {:.2} ms over {} measured)",
        r.iteration_period * 1e3,
        r.iter_time_std * 1e3,
        r.iter_times.len()
    );
    println!(
        "wire bytes  {:>12} p2p, {} collective",
        r.p2p_bytes, r.collective_bytes
    );
    if cfg.faults.is_some() {
        use bs_runtime::RunOutcome;
        let line = match &r.outcome {
            RunOutcome::Completed => "Completed (no recovery needed)".to_string(),
            RunOutcome::DegradedCompleted { retries, reroutes } => {
                format!("DegradedCompleted ({retries} retries, {reroutes} reroutes)")
            }
            RunOutcome::Failed { reason } => format!("Failed: {reason}"),
        };
        println!("outcome     {line:>12}");
    }
    if let (Some(path), Some(trace)) = (trace_path, &r.trace) {
        match std::fs::write(&path, trace.to_chrome_json()) {
            Ok(()) => println!(
                "trace       {:>12} spans -> {path} (open in chrome://tracing)",
                trace.len()
            ),
            Err(e) => eprintln!("simctl: cannot write trace to {path}: {e}"),
        }
    }
    if let (Some(path), Some(ms)) = (metrics_path, &r.metrics) {
        println!();
        print!("{}", bs_harness::metrics_report::render_run_metrics(ms));
        if path != "-" {
            bs_harness::metrics_report::write_metrics_json(&path, ms);
            println!("metrics     {:>12} entries -> {path}", ms.entries().len());
        }
    }
    if let (Some(path), Some(x)) = (xray_path, &r.xray) {
        println!();
        print!("{}", bs_harness::xray_report::render_xray(x));
        if path != "-" {
            bs_harness::xray_report::write_critical_path_json(&path, x);
            println!(
                "xray        {:>12} events -> {path}",
                x.counts.parts + x.counts.compute_spans
            );
        }
    }
}
