//! Regenerates Figure 14 (tuner search cost). `BS_QUICK=1` for smoke mode.

use bs_harness::experiments::fig14;
use bs_harness::{report, Fidelity};

fn main() {
    let r = fig14::run_experiment(Fidelity::from_env());
    print!("{}", fig14::render(&r));
    report::write_json("fig14", &r);
}
