//! Regenerates Figure 11 (resnet50 scaling). `BS_QUICK=1` for smoke mode.

use bs_harness::experiments::scaling;
use bs_harness::{report, Fidelity};

fn main() {
    let r = scaling::run_experiment(
        "Figure 11",
        bs_models::zoo::resnet50(),
        Fidelity::from_env(),
    );
    print!("{}", scaling::render(&r));
    report::write_json("fig11", &r);
}
