//! Regenerates Figure 4 (partition/credit sweeps). `BS_QUICK=1` for smoke.

use bs_harness::experiments::fig04;
use bs_harness::{report, Fidelity};

fn main() {
    let r = fig04::run_experiment(Fidelity::from_env());
    print!("{}", fig04::render(&r));
    report::write_json("fig04", &r);
}
