//! Runs the §7 future-directions extensions (dynamic re-tuning under a
//! bandwidth schedule; per-layer partition sizes). `BS_QUICK=1` smoke.

use bs_harness::experiments::dynamic;
use bs_harness::{report, Fidelity};

fn main() {
    let r = dynamic::run_experiment(Fidelity::from_env());
    print!("{}", dynamic::render(&r));
    report::write_json("dynamic", &r);
}
