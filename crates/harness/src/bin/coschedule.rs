//! Runs the §7 co-tenant-congestion experiment. `BS_QUICK=1` smoke.

use bs_harness::experiments::coschedule;
use bs_harness::{report, Fidelity};

fn main() {
    let r = coschedule::run_experiment(Fidelity::from_env());
    print!("{}", coschedule::render(&r));
    report::write_json("coschedule", &r);
}
