//! Runs the multi-job cluster experiment (`BS_QUICK=1` smoke), then
//! verifies the two cluster-mode invariants the simulator promises:
//! same seed ⇒ bit-identical trace, and a single-job cluster reproduces
//! the standalone `World` run exactly.
//!
//! `--metrics [FILE]` additionally records run telemetry on the 2-job
//! reference cluster, prints the cluster metrics summary (per-job stall
//! breakdown, per-NIC utilisation, per-job NIC shares) and, when FILE is
//! given, writes the machine-readable metrics.json there.
//!
//! `--xray [FILE]` records the causal event log on the same reference
//! cluster, prints each job's critical-path attribution (per-category
//! breakdown, top critical tensors) and, when FILE is given, writes the
//! lead job's schema-versioned critical_path.json there.
//!
//! `--contention [FILE]` runs the 4-tenant contention reference (three
//! PS tenants + one burst tenant, packed) with the link-contention
//! observatory recording, asserts the matrix is byte-deterministic,
//! prints the per-link tenant shares and pairwise phase-collision tables
//! and, when FILE is given, writes the schema-versioned contention.json
//! there.
//!
//! `--watch [FILE]` reruns the 2-job reference cluster with the scope
//! bus attached: prints one live `watch` line per iteration, retransmit
//! and wave event as the driver publishes them (with a drift bank
//! listening), and, when FILE is given, writes the full event stream as
//! schema-versioned JSONL (results/events.schema.json) there.
//!
//! `--faults [PLAN.json]` runs the machine-failure reaction study on the
//! 2-job reference pair (plus one spare machine) under the given
//! cluster-scope fault plan (default: the committed
//! `tests/fixtures/cluster_fault_plan.json`), on both fabrics: once
//! riding out the outage and once with the driver's reactive
//! checkpoint/migrate/resume loop. The binary asserts every reactive arm
//! migrated at least once and finished `DegradedCompleted`, asserts
//! checkpoint+migrate beats no-reaction on makespan on both fabrics, and
//! writes the machine-readable study to results/cluster_faults.json.
//!
//! `--threads N` sets the thread count for the conservative-parallel
//! core check (default: every available core). The binary runs a
//! 4-tenant mix sequentially and at N threads, asserts the traces are
//! bit-identical, and reports the wall-clock speedup.
//!
//! `--seed N` sets the base jitter seed of the synthetic job mixes
//! (default 21, the committed-artefact value), so any mix reported here
//! is reproducible from the CLI alone. The seed is printed in the result
//! header.

use bs_cluster::{run_cluster, ClusterConfig, JobSpec, PlacementPolicy};
use bs_harness::experiments::cluster;
use bs_harness::{metrics_report, report, xray_report, Fidelity, Setup};
use bs_runtime::SchedulerKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_file = |flag: &str| {
        let at = args.iter().position(|a| a == flag);
        let file = at
            .and_then(|i| args.get(i + 1))
            .filter(|v| !v.starts_with("--"));
        (at.is_some(), file)
    };
    let (metrics_on, metrics_file) = flag_file("--metrics");
    let (xray_on, xray_file) = flag_file("--xray");
    let (contention_on, contention_file) = flag_file("--contention");
    let (watch_on, watch_file) = flag_file("--watch");
    let (faults_on, faults_file) = flag_file("--faults");
    let threads: usize = flag_file("--threads")
        .1
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(2);

    let seed: u64 = flag_file("--seed")
        .1
        .and_then(|v| v.parse().ok())
        .unwrap_or(cluster::DEFAULT_SEED);

    let fid = Fidelity::from_env();
    println!(
        "cluster study seed: {seed} (co-tenants {seed}/{}, placement base {})",
        seed + 1,
        seed + 79
    );
    let r = cluster::run_experiment(fid, seed);
    print!("{}", cluster::render(&r));
    report::write_json("cluster", &r);

    // Determinism: the same 2-job cluster twice, traces recorded, must
    // serialise to the same bytes.
    let a = cluster::reference_run(fid, metrics_on, xray_on);
    let b = cluster::reference_run(fid, metrics_on, xray_on);
    let (ta, tb) = (
        a.trace.as_ref().expect("trace recorded").to_chrome_json(),
        b.trace.as_ref().expect("trace recorded").to_chrome_json(),
    );
    assert_eq!(ta, tb, "same seed must give a bit-identical cluster trace");
    println!(
        "determinism: 2-job rerun produced a bit-identical trace ({} bytes)",
        ta.len()
    );

    if metrics_on {
        println!();
        print!("{}", metrics_report::render_cluster_metrics(&a));
        if let (Some(path), Some(ms)) = (metrics_file, &a.metrics) {
            metrics_report::write_metrics_json(path, ms);
            println!("metrics: {} entries -> {path}", ms.entries().len());
        }
    }

    if xray_on {
        println!();
        print!("{}", xray_report::render_cluster_xray(&a));
        if let (Some(path), Some(x)) = (
            xray_file,
            a.jobs.first().and_then(|j| j.result.xray.as_ref()),
        ) {
            xray_report::write_critical_path_json(path, x);
            println!("xray: critical path of {} -> {path}", a.jobs[0].name);
        }
    }

    if contention_on {
        let r = cluster::contention_reference(fid);
        let m = r.contention.as_ref().expect("contention recorded");
        let json = serde_json::to_string_pretty(m).expect("contention serialises");
        // The observatory's export contract: a rerun renders the same bytes.
        let again = cluster::contention_reference(fid);
        assert_eq!(
            json,
            serde_json::to_string_pretty(again.contention.as_ref().unwrap())
                .expect("contention serialises"),
            "contention matrix must be byte-deterministic"
        );
        println!();
        print!("{}", metrics_report::render_contention(m));
        println!(
            "determinism: contention rerun produced a byte-identical matrix ({} bytes)",
            json.len()
        );
        if let Some(path) = contention_file {
            metrics_report::write_contention_json(path, m);
            println!(
                "contention: {} links, {} pairs -> {path}",
                m.links.len(),
                m.pairs.len()
            );
        }
    }

    if watch_on {
        use bs_scope::{FlightRecorder, ScopeBus, WatchTable};
        println!();
        let mut bus = ScopeBus::new();
        bus.subscribe(Box::new(bs_tune::LiveDrift::new(fid.warmup)));
        bus.subscribe(Box::new(WatchTable::new()));
        let flight = watch_file.map(|_| {
            let (rec, handle) = FlightRecorder::new();
            bus.subscribe(Box::new(rec));
            handle
        });
        let r = cluster::observed_reference(fid, &mut bus);
        bus.finish(r.makespan);
        println!(
            "watch: 2-job reference cluster published {} events",
            bus.events_seen()
        );
        if let (Some(path), Some(handle)) = (watch_file, &flight) {
            match std::fs::write(path, handle.to_jsonl()) {
                Ok(()) => println!("events: {} rows -> {path}", handle.len()),
                Err(e) => eprintln!("cluster: cannot write events to {path}: {e}"),
            }
        }
    }

    if faults_on {
        let plan = match faults_file {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read fault plan {path}: {e}"));
                bs_faults::FaultPlan::from_json(&text)
                    .unwrap_or_else(|e| panic!("invalid fault plan {path}: {e}"))
            }
            None => cluster::cluster_fault_fixture(),
        };
        let m = cluster::migration_study(fid, &plan);
        println!();
        print!("{}", cluster::render_migration(&m));
        for r in &m.rows {
            assert!(
                r.outcomes.iter().all(|o| !o.starts_with("FAILED")),
                "{}/{}: a job failed: {:?}",
                r.fabric,
                r.reaction,
                r.outcomes
            );
            if r.reaction == "checkpoint+migrate" {
                assert!(
                    r.migrations >= 1,
                    "{}: the machine failure must trigger a migration",
                    r.fabric
                );
                assert!(
                    r.outcomes.iter().all(|o| o.starts_with("degraded")),
                    "{}: migrated jobs must finish DegradedCompleted: {:?}",
                    r.fabric,
                    r.outcomes
                );
            }
        }
        for s in &m.savings {
            assert!(
                s.saved_secs > 0.0,
                "{}: checkpoint+migrate must beat no-reaction on makespan \
                 ({:.2} s vs {:.2} s)",
                s.fabric,
                s.migrate_secs,
                s.no_reaction_secs
            );
        }
        report::write_json("cluster_faults", &m);
        println!(
            "faults: checkpoint+migrate beat no-reaction on both fabrics -> results/cluster_faults.json"
        );
    }

    // Parallel core: the same 4-tenant mix through the sequential and the
    // conservative-parallel driver must produce bit-identical traces; the
    // thread count only buys wall clock.
    let (seq_wall, seq) = cluster::parallel_reference(fid, 1);
    let (par_wall, par) = cluster::parallel_reference(fid, threads);
    assert_eq!(
        seq.trace.as_ref().expect("trace recorded").to_chrome_json(),
        par.trace.as_ref().expect("trace recorded").to_chrome_json(),
        "parallel core must be bit-identical to the sequential core"
    );
    println!(
        "parallel core: {threads} threads ran the 4-tenant mix in {:.1} ms vs {:.1} ms sequential ({:.2}x), bit-identical trace",
        par_wall * 1e3,
        seq_wall * 1e3,
        seq_wall / par_wall
    );

    // Degenerate case: a 1-job cluster is the standalone simulator.
    let cfg = Setup::MxnetPsRdma.config(
        bs_models::zoo::resnet50(),
        16,
        25.0,
        SchedulerKind::ByteScheduler {
            partition: 4_000_000,
            credit: 16_000_000,
        },
    );
    let mut cfg = cfg;
    fid.apply(&mut cfg);
    let solo = bs_runtime::run(&cfg);
    let one = run_cluster(
        &ClusterConfig {
            placement: PlacementPolicy::Packed,
            ..ClusterConfig::new(cfg.num_workers * 2, cfg.net)
        },
        &[JobSpec::train("solo", cfg.clone())],
    );
    let in_cluster = &one.jobs[0].result;
    assert_eq!(solo.finished_at, in_cluster.finished_at, "finish time");
    assert_eq!(solo.speed, in_cluster.speed, "training speed");
    assert_eq!(solo.p2p_bytes, in_cluster.p2p_bytes, "fabric bytes");
    assert_eq!(solo.comm_events, in_cluster.comm_events, "fabric events");
    println!(
        "degenerate case: 1-job cluster matches World::run exactly ({:.0} {} at t={:?})",
        solo.speed, solo.speed_unit, solo.finished_at
    );
}
