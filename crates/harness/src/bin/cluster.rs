//! Runs the multi-job cluster experiment (`BS_QUICK=1` smoke), then
//! verifies the two cluster-mode invariants the simulator promises:
//! same seed ⇒ bit-identical trace, and a single-job cluster reproduces
//! the standalone `World` run exactly.
//!
//! `--metrics [FILE]` additionally records run telemetry on the 2-job
//! reference cluster, prints the cluster metrics summary (per-job stall
//! breakdown, per-NIC utilisation, per-job NIC shares) and, when FILE is
//! given, writes the machine-readable metrics.json there.

use bs_cluster::{run_cluster, ClusterConfig, JobSpec, PlacementPolicy};
use bs_harness::experiments::cluster;
use bs_harness::{metrics_report, report, Fidelity, Setup};
use bs_runtime::SchedulerKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_at = args.iter().position(|a| a == "--metrics");
    let metrics_file = metrics_at
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"));

    let fid = Fidelity::from_env();
    let r = cluster::run_experiment(fid);
    print!("{}", cluster::render(&r));
    report::write_json("cluster", &r);

    // Determinism: the same 2-job cluster twice, traces recorded, must
    // serialise to the same bytes.
    let a = cluster::reference_run(fid, metrics_at.is_some());
    let b = cluster::reference_run(fid, metrics_at.is_some());
    let (ta, tb) = (
        a.trace.as_ref().expect("trace recorded").to_chrome_json(),
        b.trace.as_ref().expect("trace recorded").to_chrome_json(),
    );
    assert_eq!(ta, tb, "same seed must give a bit-identical cluster trace");
    println!(
        "determinism: 2-job rerun produced a bit-identical trace ({} bytes)",
        ta.len()
    );

    if metrics_at.is_some() {
        println!();
        print!("{}", metrics_report::render_cluster_metrics(&a));
        if let (Some(path), Some(ms)) = (metrics_file, &a.metrics) {
            metrics_report::write_metrics_json(path, ms);
            println!("metrics: {} entries -> {path}", ms.entries().len());
        }
    }

    // Degenerate case: a 1-job cluster is the standalone simulator.
    let cfg = Setup::MxnetPsRdma.config(
        bs_models::zoo::resnet50(),
        16,
        25.0,
        SchedulerKind::ByteScheduler {
            partition: 4_000_000,
            credit: 16_000_000,
        },
    );
    let mut cfg = cfg;
    fid.apply(&mut cfg);
    let solo = bs_runtime::run(&cfg);
    let one = run_cluster(
        &ClusterConfig {
            placement: PlacementPolicy::Packed,
            ..ClusterConfig::new(cfg.num_workers * 2, cfg.net)
        },
        &[JobSpec::train("solo", cfg.clone())],
    );
    let in_cluster = &one.jobs[0].result;
    assert_eq!(solo.finished_at, in_cluster.finished_at, "finish time");
    assert_eq!(solo.speed, in_cluster.speed, "training speed");
    assert_eq!(solo.p2p_bytes, in_cluster.p2p_bytes, "fabric bytes");
    assert_eq!(solo.comm_events, in_cluster.comm_events, "fabric events");
    println!(
        "degenerate case: 1-job cluster matches World::run exactly ({:.0} {} at t={:?})",
        solo.speed, solo.speed_unit, solo.finished_at
    );
}
