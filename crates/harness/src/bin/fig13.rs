//! Regenerates Figure 13 (bandwidth sweep). `BS_QUICK=1` for smoke mode.

use bs_harness::experiments::fig13;
use bs_harness::{report, Fidelity};

fn main() {
    let r = fig13::run_experiment(Fidelity::from_env());
    print!("{}", fig13::render(&r));
    report::write_json("fig13", &r);
}
