//! Regenerates every table and figure, sequentially, writing JSON under
//! `results/`. `BS_QUICK=1` for a fast smoke pass.

use bs_harness::experiments::{fig02, fig04, fig09, fig13, fig14, scaling, table1};
use bs_harness::{report, Fidelity};

fn main() {
    let fid = Fidelity::from_env();
    let t0 = std::time::Instant::now();

    let r = fig02::run_experiment(fid);
    print!("{}", fig02::render(&r));
    report::write_json("fig02", &r);

    let r = fig04::run_experiment(fid);
    print!("{}", fig04::render(&r));
    report::write_json("fig04", &r);

    let r = fig09::run_experiment(fid);
    print!("{}", fig09::render(&r));
    report::write_json("fig09", &r);

    for (name, model) in [
        ("Figure 10", bs_models::zoo::vgg16()),
        ("Figure 11", bs_models::zoo::resnet50()),
        ("Figure 12", bs_models::zoo::transformer()),
    ] {
        let r = scaling::run_experiment(name, model, fid);
        print!("{}", scaling::render(&r));
        let key = match name {
            "Figure 10" => "fig10",
            "Figure 11" => "fig11",
            _ => "fig12",
        };
        report::write_json(key, &r);
    }

    let r = fig13::run_experiment(fid);
    print!("{}", fig13::render(&r));
    report::write_json("fig13", &r);

    let r = fig14::run_experiment(fid);
    print!("{}", fig14::render(&r));
    report::write_json("fig14", &r);

    let r = table1::run_experiment(fid);
    print!("{}", table1::render(&r));
    report::write_json("table1", &r);

    eprintln!("all experiments done in {:?}", t0.elapsed());
}
