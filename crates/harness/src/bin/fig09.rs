//! Regenerates Figure 9 (BO tuning session). `BS_QUICK=1` for smoke mode.

use bs_harness::experiments::fig09;
use bs_harness::{report, Fidelity};

fn main() {
    let r = fig09::run_experiment(Fidelity::from_env());
    print!("{}", fig09::render(&r));
    report::write_json("fig09", &r);
}
