//! Regenerates Figure 12 (transformer scaling). `BS_QUICK=1` for smoke mode.

use bs_harness::experiments::scaling;
use bs_harness::{report, Fidelity};

fn main() {
    let r = scaling::run_experiment(
        "Figure 12",
        bs_models::zoo::transformer(),
        Fidelity::from_env(),
    );
    print!("{}", scaling::render(&r));
    report::write_json("fig12", &r);
}
