//! Regenerates Figure 2 (contrived example). `BS_QUICK=1` for smoke mode.

use bs_harness::experiments::fig02;
use bs_harness::{report, Fidelity};

fn main() {
    let r = fig02::run_experiment(Fidelity::from_env());
    print!("{}", fig02::render(&r));
    report::write_json("fig02", &r);
}
