//! Regenerates Figure 10 (vgg16 scaling). `BS_QUICK=1` for smoke mode.

use bs_harness::experiments::scaling;
use bs_harness::{report, Fidelity};

fn main() {
    let r = scaling::run_experiment("Figure 10", bs_models::zoo::vgg16(), Fidelity::from_env());
    print!("{}", scaling::render(&r));
    report::write_json("fig10", &r);
}
