//! Replays a cluster trace through the shared-fabric simulator and
//! exercises the what-if query service (`BS_QUICK=1` truncates for
//! smoke runs).
//!
//! `--trace FILE` selects the trace (Philly-style `.json` or PAI-style
//! `.csv`; default: the committed `philly_day.json` fixture).
//!
//! `--serve N` drives `N` what-if queries through a [`ReplayService`]
//! in batches (default 16), printing throughput, per-batch latency and
//! the cache/dedup counters; with enough repeats the run asserts the
//! LRU actually hit.
//!
//! `--metrics` re-replays the trace with per-wave recorders on and
//! prints, for every wave, the cluster metrics summary (per-job stall
//! breakdown, per-NIC utilisation, per-job NIC shares) and the wave's
//! link-contention matrix — the same tables `cluster --metrics` /
//! `cluster --contention` print for a single cluster run. Recording is
//! observation-only; the binary asserts the recorded replay's aggregate
//! report is byte-identical to the plain one.
//!
//! The binary also re-replays the trace and asserts the two reports
//! serialize to identical bytes — the determinism contract CI leans on.

use bs_harness::experiments::replay;
use bs_harness::{metrics_report, report, Fidelity};
use bs_replay::{replay_trace, replay_trace_recorded};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .filter(|v| !v.starts_with("--"))
            .cloned()
    };
    let trace_path = flag_value("--trace").unwrap_or_else(|| replay::DEFAULT_TRACE.to_string());
    let n_queries: usize = flag_value("--serve")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    let fid = Fidelity::from_env();
    let opts = replay::base_options(fid);
    println!(
        "replaying {trace_path} (wave {}, arrival scale {}, iters cap {}, seed {})",
        opts.wave, opts.arrival_scale, opts.iters_cap, opts.seed
    );

    let s = replay::run_experiment(fid, &trace_path, n_queries);
    print!("{}", replay::render(&s));
    report::write_json("replay", &s);

    // Determinism: the same trace under the same options must serialize
    // to byte-identical reports.
    let jobs = replay::load_trace_file(&trace_path).expect("trace loads");
    let a = serde_json::to_string(&replay_trace(&jobs, &opts)).expect("report serializes");
    let b = serde_json::to_string(&replay_trace(&jobs, &opts)).expect("report serializes");
    assert_eq!(a, b, "same trace + seed must give a byte-identical report");
    println!(
        "determinism: re-replay produced a byte-identical report ({} bytes)",
        a.len()
    );

    if args.iter().any(|a| a == "--metrics") {
        let (recorded, waves) = replay_trace_recorded(&jobs, &opts, true, true);
        assert_eq!(
            serde_json::to_string(&recorded).expect("report serializes"),
            a,
            "per-wave recording must not change the replay"
        );
        for w in &waves {
            println!(
                "\n=== wave {} (epoch {:.3} s, {} jobs) ===",
                w.wave,
                w.epoch_secs,
                w.result.jobs.len()
            );
            print!("{}", metrics_report::render_cluster_metrics(&w.result));
            if let Some(m) = &w.result.contention {
                println!();
                print!("{}", metrics_report::render_contention(m));
            }
        }
    }

    // Service contract: with more queries than unique configs, repeats
    // must be answered from the cache (or collapse inside a batch).
    if n_queries > s.serve.unique_configs {
        assert!(
            s.serve.cache_hits > 0,
            "repeat queries must hit the LRU cache: {:?}",
            s.serve
        );
        assert_eq!(
            s.serve.executed as usize, s.serve.unique_configs,
            "every duplicate must be served without re-execution"
        );
    }
    println!(
        "service: {} queries -> {} executed, {} cache hits, {} batch-dedup",
        s.serve.queries, s.serve.executed, s.serve.cache_hits, s.serve.batch_dedup
    );
}
