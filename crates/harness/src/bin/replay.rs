//! Replays a cluster trace through the shared-fabric simulator and
//! exercises the what-if query service (`BS_QUICK=1` truncates for
//! smoke runs).
//!
//! `--trace FILE` selects the trace (Philly-style `.json` or PAI-style
//! `.csv`; default: the committed `philly_day.json` fixture).
//!
//! `--serve N` drives `N` what-if queries through a [`ReplayService`]
//! in batches (default 16), printing throughput, per-batch latency and
//! the cache/dedup counters; with enough repeats the run asserts the
//! LRU actually hit.
//!
//! `--metrics` re-replays the trace with per-wave recorders on and
//! prints, for every wave, the cluster metrics summary (per-job stall
//! breakdown, per-NIC utilisation, per-job NIC shares) and the wave's
//! link-contention matrix — the same tables `cluster --metrics` /
//! `cluster --contention` print for a single cluster run. Recording is
//! observation-only; the binary asserts the recorded replay's aggregate
//! report is byte-identical to the plain one.
//!
//! `--watch` re-replays the trace with the scope bus attached and
//! prints one live `watch` line per wave admission/completion and
//! per-job iteration as the replay publishes them; `--events FILE`
//! additionally writes the full event stream as schema-versioned JSONL
//! (results/events.schema.json). Timestamps are absolute cluster time
//! (each wave's events are offset by its admission epoch).
//!
//! `--faults PLAN.json` applies a cluster-scope fault plan (JSON per
//! results/fault_plan.schema.json, schema v2) to **every wave**: each
//! wave is one independent cluster run, so the plan's machine indices
//! name replay-cluster machines and its times are wave-relative. Machine
//! failures trigger the cluster driver's checkpoint/migrate/resume
//! reaction inside each wave; the determinism assertions below hold
//! unchanged.
//!
//! `--serve-stdin` turns the binary into a long-running what-if query
//! service: each stdin line is one batch — a JSON query object, or an
//! array of them — and each batch prints one JSON answer line on
//! stdout. Query fields (all optional overlays on the base options):
//!
//! ```text
//! {"bandwidth_gbps": 10,
//!  "placement": "packed" | "round-robin" | "network-aware",
//!  "scheduler": "baseline" | {"partition_mb": 4, "credit_mb": 16},
//!  "threads": 4, "truncate": 8}
//! ```
//!
//! Malformed lines answer `{"error": ...}` and keep the service alive.
//! `--watch` / `--events` compose: every batch publishes a
//! `whatif_batch` scope event.
//!
//! The binary also re-replays the trace and asserts the two reports
//! serialize to identical bytes — the determinism contract CI leans on.

use std::io::BufRead;

use bs_cluster::PlacementPolicy;
use bs_harness::experiments::replay;
use bs_harness::{metrics_report, report, Fidelity};
use bs_replay::TraceJob;
use bs_replay::{
    replay_trace, replay_trace_observed, replay_trace_recorded, ReplayOptions, ReplayService,
    WhatIfAnswer, WhatIfQuery,
};
use bs_runtime::SchedulerKind;
use bs_scope::{FlightHandle, FlightRecorder, ScopeBus, WatchTable};
use serde_json::Value;

/// Builds the scope bus for `--watch` / `--events`, returning the
/// flight-recorder handle when an events file was requested.
fn scope_bus(watch: bool, events: bool) -> (ScopeBus, Option<FlightHandle>) {
    let mut bus = ScopeBus::new();
    if watch {
        bus.subscribe(Box::new(WatchTable::new()));
    }
    let flight = events.then(|| {
        let (rec, handle) = FlightRecorder::new();
        bus.subscribe(Box::new(rec));
        handle
    });
    (bus, flight)
}

fn write_events(path: &str, handle: &FlightHandle) {
    match std::fs::write(path, handle.to_jsonl()) {
        Ok(()) => println!("events: {} rows -> {path}", handle.len()),
        Err(e) => eprintln!("replay: cannot write events to {path}: {e}"),
    }
}

/// Maps one JSON object onto a [`WhatIfQuery`], rejecting unknown keys
/// and mistyped values so a client typo cannot silently run the base
/// config.
fn parse_query(v: &Value) -> Result<WhatIfQuery, String> {
    let Value::Object(fields) = v else {
        return Err("each query must be a JSON object".into());
    };
    let num = |v: &Value| match *v {
        Value::U64(n) => Some(n as f64),
        Value::I64(n) => Some(n as f64),
        Value::F64(x) => Some(x),
        _ => None,
    };
    let mut q = WhatIfQuery::default();
    for (key, val) in fields {
        match key.as_str() {
            "bandwidth_gbps" => {
                q.bandwidth_gbps = Some(num(val).ok_or("bandwidth_gbps: expected a number")?);
            }
            "placement" => {
                let Value::Str(s) = val else {
                    return Err("placement: expected a string".into());
                };
                q.placement = Some(match s.as_str() {
                    "packed" => PlacementPolicy::Packed,
                    "round-robin" => PlacementPolicy::RoundRobinSpread,
                    "network-aware" => PlacementPolicy::NetworkAware,
                    other => return Err(format!("placement: unknown policy {other:?}")),
                });
            }
            "scheduler" => {
                q.scheduler = Some(match val {
                    Value::Str(s) if s == "baseline" => SchedulerKind::Baseline,
                    Value::Object(_) => {
                        let mb = |name: &str| {
                            val.get(name)
                                .and_then(num)
                                .map(|f| (f * 1e6) as u64)
                                .ok_or(format!("scheduler.{name}: expected a number"))
                        };
                        SchedulerKind::ByteScheduler {
                            partition: mb("partition_mb")?,
                            credit: mb("credit_mb")?,
                        }
                    }
                    _ => {
                        return Err(
                            "scheduler: expected \"baseline\" or {partition_mb, credit_mb}".into(),
                        )
                    }
                });
            }
            "threads" => {
                q.threads = Some(
                    num(val)
                        .filter(|x| *x >= 1.0)
                        .ok_or("threads: expected a count")? as usize,
                );
            }
            "truncate" => {
                q.truncate = Some(
                    num(val)
                        .filter(|x| *x >= 1.0)
                        .ok_or("truncate: expected a count")? as usize,
                );
            }
            other => return Err(format!("unknown query field {other:?}")),
        }
    }
    Ok(q)
}

/// Parses one stdin line: a single query object, or an array of them.
fn parse_batch(line: &str) -> Result<Vec<WhatIfQuery>, String> {
    let v = serde_json::from_str(line).map_err(|e| e.to_string())?;
    match &v {
        Value::Array(items) => items.iter().map(parse_query).collect(),
        Value::Object(_) => Ok(vec![parse_query(&v)?]),
        _ => Err("expected a query object or an array of them".into()),
    }
}

/// One JSON answer line per batch: per-query source + headline numbers,
/// plus the service's cumulative counters.
fn answer_line(answers: &[WhatIfAnswer], svc: &ReplayService) -> String {
    let rows: Vec<Value> = answers
        .iter()
        .map(|a| {
            let source = match a.source {
                bs_replay::AnswerSource::Computed => "computed",
                bs_replay::AnswerSource::Cache => "cache",
                bs_replay::AnswerSource::BatchDedup => "batch_dedup",
            };
            Value::Object(vec![
                ("source".into(), Value::Str(source.into())),
                ("jobs".into(), Value::U64(a.report.jobs.len() as u64)),
                ("waves".into(), Value::U64(a.report.waves as u64)),
                ("makespan_secs".into(), Value::F64(a.report.makespan_secs)),
                ("jct_mean_secs".into(), Value::F64(a.report.jct.mean)),
                ("jct_p95_secs".into(), Value::F64(a.report.jct.p95)),
            ])
        })
        .collect();
    let s = svc.stats();
    let doc = Value::Object(vec![
        ("answers".into(), Value::Array(rows)),
        (
            "stats".into(),
            Value::Object(vec![
                ("queries".into(), Value::U64(s.queries)),
                ("executed".into(), Value::U64(s.executed)),
                ("cache_hits".into(), Value::U64(s.cache_hits)),
                ("batch_dedup".into(), Value::U64(s.batch_dedup)),
            ]),
        ),
    ]);
    serde_json::to_string(&doc).expect("answer serializes")
}

/// The `--serve-stdin` loop: one batch per line until EOF.
fn serve_stdin(jobs: Vec<TraceJob>, opts: ReplayOptions, watch: bool, events_path: Option<&str>) {
    let (mut bus, flight) = scope_bus(watch, events_path.is_some());
    let mut svc = ReplayService::new(jobs, opts, 32);
    eprintln!("serve-stdin: one JSON query object or array per line; EOF ends the service");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("stdin is readable");
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        match parse_batch(text) {
            Ok(queries) => {
                let answers = svc.submit_batch_observed(&queries, Some(&mut bus));
                println!("{}", answer_line(&answers, &svc));
            }
            Err(e) => {
                let doc = Value::Object(vec![("error".into(), Value::Str(e))]);
                println!("{}", serde_json::to_string(&doc).expect("error serializes"));
            }
        }
    }
    bus.finish(bs_sim::SimTime::ZERO);
    if let (Some(path), Some(handle)) = (events_path, &flight) {
        write_events(path, handle);
    }
    let s = svc.stats();
    eprintln!(
        "serve-stdin: {} queries -> {} executed, {} cache hits, {} batch-dedup",
        s.queries, s.executed, s.cache_hits, s.batch_dedup
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .filter(|v| !v.starts_with("--"))
            .cloned()
    };
    let trace_path = flag_value("--trace").unwrap_or_else(|| replay::DEFAULT_TRACE.to_string());
    let n_queries: usize = flag_value("--serve")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    let watch = args.iter().any(|a| a == "--watch");
    let events_file = flag_value("--events");

    let fid = Fidelity::from_env();
    let mut opts = replay::base_options(fid);
    if let Some(path) = flag_value("--faults") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read fault plan {path}: {e}"));
        let plan = bs_faults::FaultPlan::from_json(&text)
            .unwrap_or_else(|e| panic!("invalid fault plan {path}: {e}"));
        println!(
            "faults: applying {path} to every wave ({} machine failures, {} link events, loss {})",
            plan.machine_failures.len(),
            plan.link_events.len(),
            plan.loss_rate
        );
        opts.faults = Some(plan);
    }

    if args.iter().any(|a| a == "--serve-stdin") {
        let jobs = replay::load_trace_file(&trace_path).expect("trace loads");
        serve_stdin(jobs, opts, watch, events_file.as_deref());
        return;
    }

    println!(
        "replaying {trace_path} (wave {}, arrival scale {}, iters cap {}, seed {})",
        opts.wave, opts.arrival_scale, opts.iters_cap, opts.seed
    );

    let s = replay::run_experiment(fid, &trace_path, n_queries);
    print!("{}", replay::render(&s));
    report::write_json("replay", &s);

    // Determinism: the same trace under the same options must serialize
    // to byte-identical reports.
    let jobs = replay::load_trace_file(&trace_path).expect("trace loads");
    let a = serde_json::to_string(&replay_trace(&jobs, &opts)).expect("report serializes");
    let b = serde_json::to_string(&replay_trace(&jobs, &opts)).expect("report serializes");
    assert_eq!(a, b, "same trace + seed must give a byte-identical report");
    println!(
        "determinism: re-replay produced a byte-identical report ({} bytes)",
        a.len()
    );

    if args.iter().any(|a| a == "--metrics") {
        let (recorded, waves) = replay_trace_recorded(&jobs, &opts, true, true);
        assert_eq!(
            serde_json::to_string(&recorded).expect("report serializes"),
            a,
            "per-wave recording must not change the replay"
        );
        for w in &waves {
            println!(
                "\n=== wave {} (epoch {:.3} s, {} jobs) ===",
                w.wave,
                w.epoch_secs,
                w.result.jobs.len()
            );
            print!("{}", metrics_report::render_cluster_metrics(&w.result));
            if let Some(m) = &w.result.contention {
                println!();
                print!("{}", metrics_report::render_contention(m));
            }
        }
    }

    if watch || events_file.is_some() {
        let (mut bus, flight) = scope_bus(watch, events_file.is_some());
        let (observed, _) = replay_trace_observed(&jobs, &opts, false, false, Some(&mut bus));
        assert_eq!(
            serde_json::to_string(&observed).expect("report serializes"),
            a,
            "scope recording must not change the replay"
        );
        println!(
            "watch: replay published {} events across {} waves",
            bus.events_seen(),
            observed.waves
        );
        if let (Some(path), Some(handle)) = (events_file.as_deref(), &flight) {
            write_events(path, handle);
        }
    }

    // Service contract: with more queries than unique configs, repeats
    // must be answered from the cache (or collapse inside a batch).
    if n_queries > s.serve.unique_configs {
        assert!(
            s.serve.cache_hits > 0,
            "repeat queries must hit the LRU cache: {:?}",
            s.serve
        );
        assert_eq!(
            s.serve.executed as usize, s.serve.unique_configs,
            "every duplicate must be served without re-execution"
        );
    }
    println!(
        "service: {} queries -> {} executed, {} cache hits, {} batch-dedup",
        s.serve.queries, s.serve.executed, s.serve.cache_hits, s.serve.batch_dedup
    );
}
