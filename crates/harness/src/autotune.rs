//! Glue between the tuners and the simulator: profile-driven (δ, c)
//! search, the way §5 deploys it (the master Core tunes, workers follow).

use bs_runtime::{run, SchedulerKind, WorldConfig};
use bs_tune::{BayesOpt, SearchSpace, Tuner};
use serde::Serialize;

/// The result of one auto-tuning session.
#[derive(Clone, Debug, Serialize)]
pub struct TuneOutcome {
    /// Best partition size δ found (bytes).
    pub partition: u64,
    /// Best credit size c found (bytes).
    pub credit: u64,
    /// Training speed at the best point (samples/sec).
    pub speed: f64,
    /// Profiling trials spent.
    pub trials: usize,
    /// The full trace: (δ, c, speed) per trial, for Figure 9-style plots.
    pub trace: Vec<(u64, u64, f64)>,
}

/// Profiles `(δ, c)` points with Bayesian Optimization and returns the
/// best found. `base` must already carry the scheduler-independent
/// configuration; its scheduler field is overridden per trial.
///
/// Each trial is one short profiled training run — exactly the paper's
/// deployment, where tuning runs concurrently with training and each PS
/// partition-size change costs a checkpoint-restart (§5). The restart cost
/// affects the *search-cost* accounting (Figure 14), not the measured
/// steady-state speed, so it is not added to the profile here.
pub fn tune(base: &WorldConfig, space: SearchSpace, trials: usize, seed: u64) -> TuneOutcome {
    assert!(trials >= 2, "tuning needs at least two trials");
    let mut bo = BayesOpt::new(seed);
    let mut trace = Vec::with_capacity(trials);
    let mut best: Option<(u64, u64, f64)> = None;
    for t in 0..trials {
        let x = bo.suggest();
        let (partition, credit) = space.decode(x);
        let mut cfg = base.clone();
        cfg.scheduler = SchedulerKind::ByteScheduler { partition, credit };
        // Distinct seed per trial: profiling noise, as in production.
        cfg.seed = seed ^ (t as u64).wrapping_mul(0x9E37_79B9);
        let speed = run(&cfg).speed;
        bo.observe(x, speed);
        trace.push((partition, credit, speed));
        if best.map(|(_, _, s)| speed > s).unwrap_or(true) {
            best = Some((partition, credit, speed));
        }
    }
    let (partition, credit, speed) = best.expect("trials >= 2");
    TuneOutcome {
        partition,
        credit,
        speed,
        trials,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fidelity, Setup};

    #[test]
    fn tuning_returns_a_point_inside_the_space() {
        let mut base = Setup::MxnetPsRdma.config(
            bs_models::zoo::resnet50(),
            16,
            10.0,
            SchedulerKind::Baseline,
        );
        Fidelity::quick().apply(&mut base);
        let space = SearchSpace::ps();
        let out = tune(&base, space, 5, 1);
        assert_eq!(out.trials, 5);
        assert_eq!(out.trace.len(), 5);
        assert!(out.partition >= space.partition.0 && out.partition <= space.partition.1);
        assert!(out.credit >= out.partition, "credit clamp respected");
        assert!(out.speed > 0.0);
        // The reported best is the max of the trace.
        let max = out
            .trace
            .iter()
            .map(|&(_, _, s)| s)
            .fold(f64::MIN, f64::max);
        assert_eq!(out.speed, max);
    }
}
