//! Result rendering: aligned text tables for the terminal, JSON for
//! `results/` (consumed when writing EXPERIMENTS.md).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// A text table with a title, per-figure.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                let pad = widths[c];
                if c == 0 {
                    let _ = write!(out, "{cell:<pad$}");
                } else {
                    let _ = write!(out, "  {cell:>pad$}");
                }
            }
            let _ = writeln!(out);
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a speed as the paper's axes do.
pub fn fmt_speed(v: f64) -> String {
    if v >= 100_000.0 {
        format!("{:.1}k", v / 1000.0)
    } else if v >= 10_000.0 {
        format!("{:.2}k", v / 1000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Formats a speed-up fraction as "+NN%".
pub fn fmt_speedup(frac: f64) -> String {
    format!("{:+.1}%", frac * 100.0)
}

/// Formats bytes in MB (the paper's Table 1 unit).
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

/// Directory where experiment JSON lands: `<workspace>/results`.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/harness; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    root.join("results")
}

/// Writes an experiment's machine-readable output to
/// `results/<name>.json`. IO failures are reported but non-fatal: the
/// printed table is the primary artefact.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "speed"]);
        t.row(vec!["baseline".into(), "123".into()]);
        t.row(vec!["bs".into(), "45678".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with('-'));
        // Right-aligned numeric column: both rows end at the same column.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters_produce_paper_style_strings() {
        assert_eq!(fmt_speed(2742.4), "2742");
        assert_eq!(fmt_speed(57_981.0), "57.98k");
        assert_eq!(fmt_speed(113_167.0), "113.2k");
        assert_eq!(fmt_speedup(0.94), "+94.0%");
        assert_eq!(fmt_speedup(-0.012), "-1.2%");
        assert_eq!(fmt_mb(6_000_000), "6.0");
    }

    #[test]
    fn results_dir_is_inside_the_workspace() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.parent().unwrap().join("Cargo.toml").exists());
    }
}
