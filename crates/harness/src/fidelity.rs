//! Measurement fidelity: full (EXPERIMENTS.md numbers) vs quick (smoke
//! tests and Criterion benches).

use serde::Serialize;

/// Controls how much work each experiment does.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fidelity {
    /// Iterations per simulated run.
    pub iters: u64,
    /// Warm-up iterations discarded before measuring.
    pub warmup: u64,
    /// Profiling trials the auto-tuner spends per configuration.
    pub tune_trials: usize,
    /// Seeds for experiments reporting mean ± std (Figure 14).
    pub seeds: u64,
    /// Compute jitter fraction.
    pub jitter: f64,
}

impl Fidelity {
    /// The fidelity EXPERIMENTS.md numbers are produced at.
    pub fn full() -> Fidelity {
        Fidelity {
            iters: 18,
            warmup: 3,
            tune_trials: 14,
            seeds: 8,
            jitter: 0.01,
        }
    }

    /// Cheap smoke fidelity for benches and integration tests.
    pub fn quick() -> Fidelity {
        Fidelity {
            iters: 7,
            warmup: 2,
            tune_trials: 6,
            seeds: 3,
            jitter: 0.01,
        }
    }

    /// Picks by the `BS_QUICK` environment variable (any non-empty value
    /// other than `0` selects quick mode).
    pub fn from_env() -> Fidelity {
        match std::env::var("BS_QUICK") {
            Ok(v) if !v.is_empty() && v != "0" => Fidelity::quick(),
            _ => Fidelity::full(),
        }
    }

    /// Applies this fidelity to a run configuration.
    pub fn apply(&self, cfg: &mut bs_runtime::WorldConfig) {
        cfg.iters = self.iters;
        cfg.warmup = self.warmup;
        cfg.jitter = self.jitter;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_cheaper_than_full() {
        let q = Fidelity::quick();
        let f = Fidelity::full();
        assert!(q.iters < f.iters);
        assert!(q.tune_trials < f.tune_trials);
        assert!(q.seeds < f.seeds);
    }

    #[test]
    fn apply_overrides_measurement_knobs() {
        let mut cfg = crate::Setup::MxnetPsTcp.config(
            bs_models::zoo::resnet50(),
            8,
            100.0,
            bs_runtime::SchedulerKind::Baseline,
        );
        Fidelity::quick().apply(&mut cfg);
        assert_eq!(cfg.iters, 7);
        assert_eq!(cfg.warmup, 2);
    }
}
