//! Human rendering of recorded run metrics: the `simctl --metrics` and
//! `cluster --metrics` summary tables.
//!
//! The [`bs_telemetry::MetricSet`] is the machine artefact; these
//! renderers pull out the three questions an operator actually asks of a
//! run — *where did the time go* (communication-stall breakdown),
//! *was the scheduler's credit the bottleneck* (per-lane occupancy and
//! stall accounting), and *were the wires busy* (per-NIC utilisation).

use std::fmt::Write as _;

use bs_cluster::{ClusterResult, ContentionMatrix};
use bs_telemetry::MetricSet;

use crate::report::Table;

/// Renders the single-run summary: per-worker stall breakdown, per-lane
/// scheduler telemetry, per-NIC utilisation. Sections whose metrics were
/// not recorded (e.g. no fabric telemetry on all-reduce runs) are
/// omitted.
pub fn render_run_metrics(ms: &MetricSet) -> String {
    let mut out = String::new();
    let window = ms.horizon.as_secs_f64();
    let _ = writeln!(
        out,
        "## Run metrics (window {:.3} s, {} metrics)",
        window,
        ms.entries().len()
    );

    let stalls = stall_rows(ms, "");
    if !stalls.is_empty() {
        let mut t = Table::new(
            "Communication stall per worker (GPU idle waiting on the network)",
            &["worker", "busy (s)", "stall (s)", "stall %"],
        );
        for (label, busy, stall) in &stalls {
            t.row(stall_cells(label, *busy, *stall));
        }
        out.push('\n');
        out.push_str(&t.render());
    }

    let lanes = lane_prefixes(ms);
    if !lanes.is_empty() {
        let mut t = Table::new(
            "Scheduler lanes (time-weighted credit occupancy, bytes)",
            &[
                "lane",
                "mean",
                "p95",
                "max",
                "stalled (s)",
                "stalls",
                "preempt",
                "released",
            ],
        );
        for prefix in &lanes {
            let occ = ms
                .get_series(&format!("{prefix}credit_in_use"))
                .expect("lane series")
                .summary(ms.horizon);
            let stalled = ms
                .get_series(&format!("{prefix}credit_stalled"))
                .map_or(0.0, |s| s.integral_secs(ms.horizon));
            let counter = |suffix: &str| {
                ms.get_counter(&format!("{prefix}{suffix}"))
                    .unwrap_or(0)
                    .to_string()
            };
            t.row(vec![
                prefix.trim_end_matches('/').to_string(),
                format!("{:.0}", occ.mean),
                format!("{:.0}", occ.p95),
                format!("{:.0}", occ.max),
                format!("{stalled:.4}"),
                counter("stall_events"),
                counter("preemptions"),
                counter("released"),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render());
    }

    if let Some(t) = nic_table(ms, "net/") {
        out.push('\n');
        out.push_str(&t.render());
    }
    out
}

/// Renders the cluster summary: per-job stall breakdown, the shared
/// fabric's per-NIC utilisation, and each tenant's share of every NIC's
/// delivered traffic.
pub fn render_cluster_metrics(r: &ClusterResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Cluster metrics (makespan {:.3} s, {} jobs)",
        r.makespan.as_secs_f64(),
        r.jobs.len()
    );

    let mut t = Table::new(
        "Communication stall per job (summed over workers, window = JCT)",
        &["job", "JCT (s)", "busy (s)", "stall (s)", "stall %"],
    );
    let mut any = false;
    for j in &r.jobs {
        let Some(ms) = &j.result.metrics else {
            continue;
        };
        let rows = stall_rows(ms, "");
        let busy: f64 = rows.iter().map(|r| r.1).sum();
        let stall: f64 = rows.iter().map(|r| r.2).sum();
        let mut cells = vec![j.name.clone(), format!("{:.3}", j.jct.as_secs_f64())];
        cells.extend(stall_cells("", busy, stall).into_iter().skip(1));
        t.row(cells);
        any = true;
    }
    if any {
        out.push('\n');
        out.push_str(&t.render());
    }

    if let Some(ms) = &r.metrics {
        if let Some(t) = nic_table(ms, "net/") {
            out.push('\n');
            out.push_str(&t.render());
        }
        let mut t = Table::new(
            "Per-job NIC traffic share (fraction of each NIC's delivered bytes)",
            &["tenant", "nic", "up share", "down share"],
        );
        let mut any = false;
        for (name, _) in ms.entries() {
            let Some((tenant, rest)) = name.split_once("/nic") else {
                continue;
            };
            let Some(nic) = rest.strip_suffix("/up_share") else {
                continue;
            };
            let up = ms.get_gauge(name).unwrap_or(0.0);
            let down = ms
                .get_gauge(&format!("{tenant}/nic{nic}/down_share"))
                .unwrap_or(0.0);
            t.row(vec![
                tenant.to_string(),
                format!("nic{nic}"),
                format!("{:.1}%", 100.0 * up),
                format!("{:.1}%", 100.0 * down),
            ]);
            any = true;
        }
        if any {
            out.push('\n');
            out.push_str(&t.render());
        }
    }
    out
}

/// Renders the link-contention matrix: per NIC direction the busy vs
/// contended window and each tenant's solo/contended byte split, then
/// the pairwise phase-collision table.
pub fn render_contention(m: &ContentionMatrix) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Link contention (window {:.3} s, {} tenants, {} active NIC directions)",
        m.horizon.as_secs_f64(),
        m.jobs.len(),
        m.links.len()
    );

    let name = |j: usize| m.jobs.get(j).cloned().unwrap_or_else(|| format!("job{j}"));
    let mb = |b: f64| format!("{:.1}", b / 1e6);
    let mut t = Table::new(
        "Per-link tenant shares (busy/contended seconds, solo vs contended MB)",
        &[
            "link",
            "busy (s)",
            "cont (s)",
            "tenant",
            "active (s)",
            "solo MB",
            "cont MB",
        ],
    );
    for l in &m.links {
        let dir = if l.up { "up" } else { "down" };
        for (i, s) in l.jobs.iter().enumerate() {
            // Link-level columns only on the first tenant row, so each
            // link reads as one visual group.
            let (link, busy, cont) = if i == 0 {
                (
                    format!("nic{}/{dir}", l.machine),
                    format!("{:.4}", l.busy_secs),
                    format!("{:.4}", l.contended_secs),
                )
            } else {
                (String::new(), String::new(), String::new())
            };
            t.row(vec![
                link,
                busy,
                cont,
                name(s.job),
                format!("{:.4}", s.active_secs),
                mb(s.solo_bytes),
                mb(s.contended_bytes),
            ]);
        }
    }
    out.push('\n');
    out.push_str(&t.render());

    if !m.pairs.is_empty() {
        let mut t = Table::new(
            "Pairwise phase collision (overlap seconds, fraction of the rarer tenant's active time)",
            &["tenant a", "tenant b", "overlap (s)", "collision"],
        );
        for p in &m.pairs {
            t.row(vec![
                name(p.a),
                name(p.b),
                format!("{:.4}", p.overlap_secs),
                format!("{:.1}%", 100.0 * p.phase_collision),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render());
    }
    out
}

/// Writes a [`ContentionMatrix`] as pretty-printed, schema-versioned
/// `contention.json` to `path`. IO failures are reported but non-fatal,
/// matching [`crate::report::write_json`].
pub fn write_contention_json(path: &str, m: &ContentionMatrix) {
    match serde_json::to_string_pretty(m) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: cannot write contention to {path}: {e}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialise contention: {e}"),
    }
}

/// `(label, busy secs, stall secs)` per worker, in registration order.
/// `prefix` narrows to one job's namespace inside a merged set.
fn stall_rows(ms: &MetricSet, prefix: &str) -> Vec<(String, f64, f64)> {
    ms.entries()
        .iter()
        .filter_map(|(name, _)| {
            let label = name
                .strip_prefix(prefix)?
                .strip_suffix("/gpu_busy_secs")?
                .to_string();
            let busy = ms.get_gauge(name)?;
            let stall = ms.get_gauge(&format!("{prefix}{label}/comm_stall_secs"))?;
            Some((label, busy, stall))
        })
        .collect()
}

fn stall_cells(label: &str, busy: f64, stall: f64) -> Vec<String> {
    let window = busy + stall;
    let pct = if window > 0.0 {
        100.0 * stall / window
    } else {
        0.0
    };
    vec![
        label.to_string(),
        format!("{busy:.3}"),
        format!("{stall:.3}"),
        format!("{pct:.1}%"),
    ]
}

/// Every scheduler-lane prefix (the part before `credit_in_use`), in
/// registration order.
fn lane_prefixes(ms: &MetricSet) -> Vec<String> {
    ms.entries()
        .iter()
        .filter_map(|(name, _)| Some(name.strip_suffix("credit_in_use")?.to_string()))
        .collect()
}

/// Per-NIC utilisation table from `{prefix}nic{i}/up_util` series, or
/// `None` when the set carries no fabric telemetry.
fn nic_table(ms: &MetricSet, prefix: &str) -> Option<Table> {
    let mut t = Table::new(
        "NIC utilisation (time-weighted busy fraction)",
        &["nic", "up mean", "up p95", "down mean", "down p95"],
    );
    let mut any = false;
    for (name, _) in ms.entries() {
        let Some(nic) = name
            .strip_prefix(prefix)
            .and_then(|n| n.strip_prefix("nic"))
            .and_then(|n| n.strip_suffix("/up_util"))
        else {
            continue;
        };
        let up = ms.get_series(name)?.summary(ms.horizon);
        let down = ms
            .get_series(&format!("{prefix}nic{nic}/down_util"))?
            .summary(ms.horizon);
        t.row(vec![
            format!("nic{nic}"),
            format!("{:.2}", up.mean),
            format!("{:.2}", up.p95),
            format!("{:.2}", down.mean),
            format!("{:.2}", down.p95),
        ]);
        any = true;
    }
    any.then_some(t)
}

/// Writes a `MetricSet` as pretty-printed `metrics.json` to `path`.
/// IO failures are reported but non-fatal, matching
/// [`crate::report::write_json`].
pub fn write_metrics_json(path: &str, ms: &MetricSet) {
    match serde_json::to_string_pretty(ms) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: cannot write metrics to {path}: {e}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialise metrics: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_sim::SimTime;
    use bs_telemetry::TimeSeries;

    fn sample_set() -> MetricSet {
        let mut ms = MetricSet::new();
        ms.horizon = SimTime::from_millis(100);
        ms.gauge("worker0/gpu_busy_secs", 0.06);
        ms.gauge("worker0/comm_stall_secs", 0.04);
        let mut occ = TimeSeries::new();
        occ.record(SimTime::ZERO, 0.0);
        occ.record(SimTime::from_millis(10), 4_000_000.0);
        ms.series("worker0/sched/lane0/credit_in_use", occ);
        let mut stalled = TimeSeries::new();
        stalled.record(SimTime::ZERO, 0.0);
        ms.series("worker0/sched/lane0/credit_stalled", stalled);
        ms.counter("worker0/sched/lane0/preemptions", 2);
        let mut util = TimeSeries::new();
        util.record(SimTime::ZERO, 1.0);
        ms.series("net/nic0/up_util", util.clone());
        ms.series("net/nic0/down_util", util);
        ms
    }

    #[test]
    fn run_summary_reports_stall_lanes_and_nics() {
        let s = render_run_metrics(&sample_set());
        assert!(s.contains("Communication stall per worker"));
        assert!(s.contains("40.0%"), "stall percent rendered: {s}");
        assert!(s.contains("Scheduler lanes"));
        assert!(s.contains("worker0/sched/lane0"));
        assert!(s.contains("NIC utilisation"));
        assert!(s.contains("nic0"));
    }

    #[test]
    fn contention_tables_name_tenants_and_links() {
        use bs_cluster::{JobLinkShare, LinkContention, PairContention};
        let m = ContentionMatrix {
            schema_version: bs_cluster::CONTENTION_SCHEMA_VERSION,
            horizon: SimTime::from_secs(1),
            jobs: vec!["vgg".into(), "burst".into()],
            links: vec![LinkContention {
                machine: 0,
                up: true,
                busy_secs: 0.5,
                contended_secs: 0.2,
                jobs: vec![
                    JobLinkShare {
                        job: 0,
                        active_secs: 0.4,
                        solo_bytes: 2e6,
                        contended_bytes: 1e6,
                    },
                    JobLinkShare {
                        job: 1,
                        active_secs: 0.3,
                        solo_bytes: 0.0,
                        contended_bytes: 5e5,
                    },
                ],
            }],
            pairs: vec![PairContention {
                a: 0,
                b: 1,
                overlap_secs: 0.2,
                phase_collision: 0.25,
            }],
        };
        let s = render_contention(&m);
        assert!(s.contains("Link contention"));
        assert!(s.contains("nic0/up"));
        assert!(s.contains("vgg") && s.contains("burst"));
        assert!(s.contains("Pairwise phase collision"));
        assert!(s.contains("25.0%"), "collision percent rendered: {s}");
    }

    #[test]
    fn empty_sections_are_omitted() {
        let ms = MetricSet::new();
        let s = render_run_metrics(&ms);
        assert!(!s.contains("Scheduler lanes"));
        assert!(!s.contains("NIC utilisation"));
    }
}
