//! Thread fan-out for independent simulation runs, built on the
//! simulation kernel's persistent [`WorkerPool`].

use bs_sim::WorkerPool;

/// Maps `f` over `items` on up to `available_parallelism` threads,
/// preserving input order in the output. Simulation runs are independent
/// and CPU-bound, so a static block partition is all that's needed.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    // The caller participates in the scope, so `threads - 1` pool workers
    // give `threads`-way parallelism.
    let pool = WorkerPool::new(threads - 1);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send>> = items
        .chunks(chunk)
        .zip(out.chunks_mut(chunk))
        .map(|(islice, oslice)| {
            let t: Box<dyn FnOnce() + Send> = Box::new(move || {
                for (item, slot) in islice.iter().zip(oslice.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
            t
        })
        .collect();
    pool.run_scoped(tasks);
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..101).collect();
        let out = parallel_map(items.clone(), |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(vec![21], |&x| x * 2), vec![42]);
    }
}
