//! Thread fan-out for independent simulation runs, built on the
//! simulation kernel's process-wide shared [`WorkerPool`].
//!
//! Earlier versions constructed a fresh pool (and therefore fresh OS
//! threads) per call; every fan-out in the process — harness sweeps and
//! the replay what-if service alike — now rides [`WorkerPool::shared`],
//! so repeated sweeps reuse the same persistent workers.

use bs_sim::WorkerPool;

/// Maps `f` over `items` on the shared pool's threads (plus the calling
/// thread), preserving input order in the output. Simulation runs are
/// independent and CPU-bound, so a static block partition is all that's
/// needed.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let pool = WorkerPool::shared();
    // The caller participates in the scope, so `workers + 1` threads run
    // `threads`-way parallel.
    let threads = (pool.workers() + 1).min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send>> = items
        .chunks(chunk)
        .zip(out.chunks_mut(chunk))
        .map(|(islice, oslice)| {
            let t: Box<dyn FnOnce() + Send> = Box::new(move || {
                for (item, slot) in islice.iter().zip(oslice.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
            t
        })
        .collect();
    pool.run_scoped(tasks);
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..101).collect();
        let out = parallel_map(items.clone(), |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(vec![21], |&x| x * 2), vec![42]);
    }

    #[test]
    fn repeated_calls_reuse_the_shared_pool() {
        // Two consecutive fan-outs must both complete on the same shared
        // pool (no per-call pool teardown in between).
        let a = parallel_map((0..64u64).collect(), |&x| x + 1);
        let b = parallel_map((0..64u64).collect(), |&x| x + 1);
        assert_eq!(a, b);
        assert_eq!(
            WorkerPool::shared().workers(),
            bs_sim::WorkerPool::shared().workers()
        );
    }
}
