//! Experiment harness: one runner per table and figure of the paper.
//!
//! Each experiment in §6 of the paper has a module under [`experiments`]
//! that regenerates it — same benchmark models, same setups, same axes —
//! and a binary (`cargo run -p bs-harness --release --bin fig10`) that
//! prints the rows and writes machine-readable JSON under `results/`.
//!
//! | binary  | reproduces |
//! |---------|------------|
//! | `fig02` | Figure 2 — contrived 3-layer example, FIFO vs better schedule |
//! | `fig04` | Figure 4 — FIFO training speed vs partition / credit size |
//! | `fig09` | Figure 9 — BO posterior after 7 samples (credit tuning) |
//! | `fig10` | Figure 10 — VGG16 speed vs #GPUs, 5 setups (+P3 in (a)) |
//! | `fig11` | Figure 11 — ResNet-50, same grid |
//! | `fig12` | Figure 12 — Transformer, same grid |
//! | `fig13` | Figure 13 — bandwidth sweep, baseline / fixed / tuned |
//! | `fig14` | Figure 14 — tuner search-cost comparison |
//! | `table1`| Table 1 — best (partition, credit) per model × arch |
//! | `all`   | everything above, sequentially |
//!
//! Use `Fidelity::quick()` (or the `BS_QUICK=1` environment variable with
//! the binaries) for fast smoke runs; `Fidelity::full()` for the numbers
//! recorded in EXPERIMENTS.md.

pub mod autotune;
pub mod experiments;
pub mod fidelity;
pub mod metrics_report;
pub mod parallel;
pub mod report;
pub mod setups;
pub mod xray_report;

pub use autotune::{tune, TuneOutcome};
pub use fidelity::Fidelity;
pub use setups::Setup;
