//! Human rendering of critical-path attribution: the `simctl --xray` and
//! `cluster --xray` summary tables.
//!
//! The [`bs_xray::XrayReport`] is the machine artefact
//! (`critical_path.json`); these renderers answer the two questions an
//! operator asks of a slow run — *which resource owned the critical
//! path* (the per-category breakdown, which sums exactly to the measured
//! wall time) and *which tensors to repartition or reprioritise first*
//! (the top-10 critical tensors).

use std::fmt::Write as _;

use bs_cluster::ClusterResult;
use bs_xray::{Category, XrayReport};

use crate::report::Table;

/// Renders the single-run summary: the critical-path attribution over
/// the measured (post-warm-up) iterations and the top-10 tensors by
/// critical-path share.
pub fn render_xray(r: &XrayReport) -> String {
    let mut out = String::new();
    let measured = r.iterations.len().saturating_sub(r.warmup);
    let _ = writeln!(
        out,
        "## Critical path ({}, {} measured iterations, mean {:.3} ms)",
        r.scheduler,
        measured,
        r.mean_iter_ns() as f64 / 1e6
    );

    let wall = r.measured_wall_ns.max(1) as f64;
    let mut t = Table::new(
        "Critical-path attribution (sums exactly to measured wall time)",
        &["category", "time (ms)", "share"],
    );
    for c in Category::ALL {
        let ns = r.totals.get(c);
        t.row(vec![
            c.label().to_string(),
            format!("{:.3}", ns as f64 / 1e6),
            format!("{:.1}%", 100.0 * ns as f64 / wall),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        format!("{:.3}", r.measured_wall_ns as f64 / 1e6),
        "100.0%".to_string(),
    ]);
    out.push('\n');
    out.push_str(&t.render());

    if !r.tensors.is_empty() {
        let mut t = Table::new(
            "Top critical tensors (non-compute critical-path time)",
            &["tensor", "critical (ms)", "share of wall"],
        );
        for s in r.tensors.iter().take(10) {
            t.row(vec![
                format!("t{}", s.tensor),
                format!("{:.3}", s.critical_ns as f64 / 1e6),
                format!("{:.1}%", 100.0 * s.critical_ns as f64 / wall),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render());
    }
    out
}

/// Renders every training job's attribution in a cluster run, one
/// section per job in spec order. Jobs without a recorded report (xray
/// was off, or the tenant never trained) are skipped.
pub fn render_cluster_xray(r: &ClusterResult) -> String {
    let mut out = String::new();
    for j in &r.jobs {
        let Some(x) = &j.result.xray else {
            continue;
        };
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(out, "=== {} ===", j.name);
        out.push_str(&render_xray(x));
    }
    out
}

/// Writes an [`XrayReport`] as pretty-printed `critical_path.json` to
/// `path`. IO failures are reported but non-fatal, matching
/// [`crate::report::write_json`].
pub fn write_critical_path_json(path: &str, r: &XrayReport) {
    match serde_json::to_string_pretty(r) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: cannot write critical path to {path}: {e}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialise critical path: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_sim::SimTime;
    use bs_xray::{ComputeSpan, XrayLog};

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    fn sample_report() -> XrayReport {
        // Two 20 µs iterations fully tiled by backward compute.
        let log = XrayLog {
            scheduler: "ByteScheduler".into(),
            start: SimTime::ZERO,
            end: us(40),
            warmup: 0,
            marks: vec![us(20), us(40)],
            compute: (0..2)
                .map(|k| ComputeSpan {
                    worker: 0,
                    iter: k,
                    layer: 0,
                    backward: true,
                    start: us(20 * k),
                    end: us(20 * (k + 1)),
                })
                .collect(),
            ..Default::default()
        };
        XrayReport::build(&log)
    }

    #[test]
    fn summary_renders_every_category_and_the_exact_total() {
        let r = sample_report();
        let s = render_xray(&r);
        assert!(s.contains("Critical path (ByteScheduler, 2 measured"));
        for c in Category::ALL {
            assert!(s.contains(c.label()), "missing {}: {s}", c.label());
        }
        // 40 µs of pure compute: compute row and total row agree.
        assert!(s.contains("compute"));
        assert!(s.contains("0.040"), "total ms rendered: {s}");
        assert!(s.contains("100.0%"));
    }

    #[test]
    fn tensor_table_is_omitted_without_transfer_segments() {
        let s = render_xray(&sample_report());
        assert!(!s.contains("Top critical tensors"));
    }
}
