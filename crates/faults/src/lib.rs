//! Deterministic fault injection for degraded-fabric experiments.
//!
//! ByteScheduler's paper argues the scheduler must keep working when the
//! environment shifts (§3.5 re-runs Bayesian Optimization "when the
//! environment changes"; §6 evaluates under varying bandwidth). This crate
//! is the vocabulary for *making* the environment shift, reproducibly:
//!
//! * [`FaultPlan`] — a declarative, JSON-(de)serialisable schedule of
//!   seeded fault events: link bandwidth degradation/restoration, link
//!   flaps (down intervals that kill in-flight transfers), per-transfer
//!   Bernoulli loss, and per-iteration worker compute stragglers, plus
//!   the [`RecoveryPolicy`] (retransmit timeout, exponential backoff,
//!   retry cap) the runtime applies when transfers are lost.
//! * [`FaultInjector`] — the runtime-facing cursor over a plan: a merged,
//!   time-sorted timeline of [`LinkChange`]s, a seeded loss stream on its
//!   own RNG (forked from the world seed with a constant distinct from
//!   the co-tenant burst stream's, so recorded runs stay bit-identical),
//!   and straggler lookups.
//!
//! The empty plan is the identity: an injector built from
//! [`FaultPlan::empty`] schedules nothing, never draws from its RNG, and
//! scales nothing — runs with `faults: Some(empty)` are bit-identical to
//! runs with `faults: None`, the "empty-plan-only" extension of the
//! recording-only guarantee, pinned by `tests/faults.rs`.

use bs_sim::{SimRng, SimTime};
use serde::Serialize;
use serde_json::Value;

/// Schema version stamped into serialised plans; bump on breaking change.
/// v2 added `machine_failures` (cluster-scope machine outages). v1
/// documents are still accepted: every v2 field is optional.
pub const FAULT_PLAN_SCHEMA_VERSION: u64 = 2;

/// Oldest plan schema version still accepted by [`FaultPlan::from_json`].
pub const FAULT_PLAN_MIN_SCHEMA_VERSION: u64 = 1;

/// XOR constant folding the world seed into the loss RNG stream. Distinct
/// from the co-tenant burst stream's `0xB6_0000` so enabling faults never
/// perturbs background traffic (and vice versa).
const LOSS_SEED_XOR: u64 = 0xFA_0000;

/// Splits one world seed into per-job fault-stream seeds with the 64-bit
/// golden-ratio multiplier, the same discipline every other per-entity
/// stream in the workspace uses. Job 0 (and therefore every single-job
/// run) keeps the unsplit seed, so solo fault plans replay bit-identically
/// at cluster scope.
pub fn job_seed(seed: u64, job: usize) -> u64 {
    seed ^ (job as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One direction of a NIC port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum LinkDir {
    /// The node's uplink (sender side).
    Up,
    /// The node's downlink (receiver side).
    Down,
}

/// A scheduled bandwidth change on one NIC direction: at `at_us`, the
/// port's capacity becomes `scale` × nominal. `scale` 1.0 restores the
/// link; 0.25 models a 4× degradation. Scales must be positive — a dead
/// link is a [`LinkFlap`], not a zero scale, because flaps also kill
/// in-flight transfers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct LinkEvent {
    /// Virtual time of the change, microseconds.
    pub at_us: u64,
    /// Machine whose NIC changes.
    pub node: usize,
    /// Which direction of the NIC.
    pub dir: LinkDir,
    /// New capacity as a fraction of nominal (> 0).
    pub scale: f64,
}

/// A link-down interval on one machine's NIC (both directions): in-flight
/// transfers occupying the port at `from_us` are killed, no new transfer
/// starts until `to_us`, then the link restores to nominal.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct LinkFlap {
    /// Machine whose link goes down.
    pub node: usize,
    /// Start of the down interval, microseconds.
    pub from_us: u64,
    /// End of the down interval, microseconds (exclusive; must be
    /// > `from_us`).
    pub to_us: u64,
}

/// A compute slowdown on one worker over an iteration range: the GPU time
/// of iterations in `[from_iter, to_iter)` is multiplied by `factor`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct StragglerSpec {
    /// The straggling worker.
    pub worker: usize,
    /// First slowed iteration (inclusive).
    pub from_iter: u64,
    /// End of the slowed range (exclusive).
    pub to_iter: u64,
    /// Compute-time multiplier (> 0; > 1 slows the worker down).
    pub factor: f64,
}

/// A whole-machine outage at cluster scope: at `at_us` the machine's NIC
/// goes down (killing in-flight transfers of every tenant on its ports)
/// and the machine stops hosting placements; at `restore_us` (exclusive,
/// like flap ends) it returns to the healthy pool. `None` means the
/// machine never comes back. Machine failures are only meaningful to the
/// cluster driver — job-private plans must not carry them.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct MachineFailure {
    /// The failing machine (cluster machine index = fabric node index).
    pub machine: usize,
    /// Failure instant, microseconds.
    pub at_us: u64,
    /// Restore instant, microseconds (exclusive; must be > `at_us`), or
    /// `None` for a permanent loss.
    pub restore_us: Option<u64>,
}

/// How the runtime recovers lost transfers: a lost partition is
/// retransmitted after `timeout_us × 2^attempt` (exponential backoff),
/// up to `max_retries` attempts per partition; exceeding the cap fails
/// the run with `RunOutcome::Failed`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct RecoveryPolicy {
    /// Base retransmit timeout, microseconds.
    pub timeout_us: u64,
    /// Maximum retransmit attempts per partition.
    pub max_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            timeout_us: 50_000,
            max_retries: 8,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff delay before retransmit attempt number `attempt` (1-based):
    /// `timeout × 2^(attempt-1)`, saturating.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        let factor = 1u64 << (attempt.saturating_sub(1)).min(20);
        SimTime::from_micros(self.timeout_us.saturating_mul(factor))
    }
}

/// A deterministic, seeded schedule of faults for one run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Scheduled bandwidth changes.
    pub link_events: Vec<LinkEvent>,
    /// Link-down intervals.
    pub flaps: Vec<LinkFlap>,
    /// Per-transfer Bernoulli drop probability at delivery, in `[0, 1)`.
    pub loss_rate: f64,
    /// Worker compute slowdowns.
    pub stragglers: Vec<StragglerSpec>,
    /// Whole-machine outages (cluster scope only; schema v2).
    pub machine_failures: Vec<MachineFailure>,
    /// Recovery policy applied to lost transfers.
    pub recovery: RecoveryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::empty()
    }
}

impl FaultPlan {
    /// The identity plan: injects nothing, draws nothing.
    pub fn empty() -> Self {
        FaultPlan {
            link_events: Vec::new(),
            flaps: Vec::new(),
            loss_rate: 0.0,
            stragglers: Vec::new(),
            machine_failures: Vec::new(),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// True when the plan schedules no fault of any kind.
    pub fn is_empty(&self) -> bool {
        self.link_events.is_empty()
            && self.flaps.is_empty()
            && self.loss_rate == 0.0
            && self.stragglers.is_empty()
            && self.machine_failures.is_empty()
    }

    /// Validates invariants, returning the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.loss_rate) {
            return Err(format!("loss_rate {} outside [0, 1)", self.loss_rate));
        }
        for e in &self.link_events {
            if e.scale <= 0.0 || !e.scale.is_finite() {
                return Err(format!(
                    "link event at {}us on node {}: scale {} must be finite and > 0 \
                     (use a flap for a dead link)",
                    e.at_us, e.node, e.scale
                ));
            }
        }
        for f in &self.flaps {
            if f.to_us <= f.from_us {
                return Err(format!(
                    "flap on node {}: empty interval [{}us, {}us)",
                    f.node, f.from_us, f.to_us
                ));
            }
        }
        for s in &self.stragglers {
            if s.factor <= 0.0 || !s.factor.is_finite() {
                return Err(format!(
                    "straggler on worker {}: factor {} must be finite and > 0",
                    s.worker, s.factor
                ));
            }
            if s.to_iter <= s.from_iter {
                return Err(format!(
                    "straggler on worker {}: empty iteration range [{}, {})",
                    s.worker, s.from_iter, s.to_iter
                ));
            }
        }
        for m in &self.machine_failures {
            if let Some(restore) = m.restore_us {
                if restore <= m.at_us {
                    return Err(format!(
                        "machine failure on machine {}: empty interval [{}us, {}us)",
                        m.machine, m.at_us, restore
                    ));
                }
            }
        }
        if self.recovery.timeout_us == 0 {
            return Err("recovery timeout must be positive".into());
        }
        Ok(())
    }

    /// Renders the plan as the schema-versioned JSON document
    /// `results/fault_plan.schema.json` describes.
    pub fn to_json(&self) -> String {
        let mut fields = vec![(
            "schema_version".to_string(),
            Value::U64(FAULT_PLAN_SCHEMA_VERSION),
        )];
        if let Value::Object(body) = self.to_value() {
            fields.extend(body);
        }
        serde_json::to_string_pretty(&Value::Object(fields)).expect("plan renders") + "\n"
    }

    /// Parses a plan from its JSON form. Every field except
    /// `schema_version` is optional and defaults to the empty plan's
    /// value, so `{"schema_version": 1}` is the identity plan.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let doc = serde_json::from_str(text).map_err(|e| format!("fault plan: {e}"))?;
        Self::from_value(&doc)
    }

    /// Parses a plan from an already-decoded JSON tree.
    pub fn from_value(doc: &Value) -> Result<FaultPlan, String> {
        let version = get_u64(doc, "schema_version")?
            .ok_or("fault plan: missing schema_version".to_string())?;
        if !(FAULT_PLAN_MIN_SCHEMA_VERSION..=FAULT_PLAN_SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "fault plan: schema_version {version} unsupported (expected \
                 {FAULT_PLAN_MIN_SCHEMA_VERSION}..={FAULT_PLAN_SCHEMA_VERSION})"
            ));
        }
        let mut plan = FaultPlan::empty();
        if let Some(rate) = get_f64(doc, "loss_rate")? {
            plan.loss_rate = rate;
        }
        if let Some(items) = get_array(doc, "link_events")? {
            for (i, item) in items.iter().enumerate() {
                let dir = match get_str(item, "dir")? {
                    Some("Up") => LinkDir::Up,
                    Some("Down") => LinkDir::Down,
                    Some(s) => return Err(format!("link_events[{i}]: bad dir {s:?}")),
                    None => return Err(format!("link_events[{i}]: missing dir")),
                };
                plan.link_events.push(LinkEvent {
                    at_us: require_u64(item, "at_us", &format!("link_events[{i}]"))?,
                    node: require_u64(item, "node", &format!("link_events[{i}]"))? as usize,
                    dir,
                    scale: require_f64(item, "scale", &format!("link_events[{i}]"))?,
                });
            }
        }
        if let Some(items) = get_array(doc, "flaps")? {
            for (i, item) in items.iter().enumerate() {
                plan.flaps.push(LinkFlap {
                    node: require_u64(item, "node", &format!("flaps[{i}]"))? as usize,
                    from_us: require_u64(item, "from_us", &format!("flaps[{i}]"))?,
                    to_us: require_u64(item, "to_us", &format!("flaps[{i}]"))?,
                });
            }
        }
        if let Some(items) = get_array(doc, "stragglers")? {
            for (i, item) in items.iter().enumerate() {
                plan.stragglers.push(StragglerSpec {
                    worker: require_u64(item, "worker", &format!("stragglers[{i}]"))? as usize,
                    from_iter: require_u64(item, "from_iter", &format!("stragglers[{i}]"))?,
                    to_iter: require_u64(item, "to_iter", &format!("stragglers[{i}]"))?,
                    factor: require_f64(item, "factor", &format!("stragglers[{i}]"))?,
                });
            }
        }
        if let Some(items) = get_array(doc, "machine_failures")? {
            for (i, item) in items.iter().enumerate() {
                plan.machine_failures.push(MachineFailure {
                    machine: require_u64(item, "machine", &format!("machine_failures[{i}]"))?
                        as usize,
                    at_us: require_u64(item, "at_us", &format!("machine_failures[{i}]"))?,
                    restore_us: get_u64(item, "restore_us")?,
                });
            }
        }
        if let Some(rec) = doc.get("recovery") {
            plan.recovery = RecoveryPolicy {
                timeout_us: require_u64(rec, "timeout_us", "recovery")?,
                max_retries: require_u64(rec, "max_retries", "recovery")? as u32,
            };
        }
        plan.validate()?;
        Ok(plan)
    }
}

fn get_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::U64(n)) => Ok(Some(*n)),
        Some(Value::I64(n)) if *n >= 0 => Ok(Some(*n as u64)),
        Some(Value::F64(x)) if *x >= 0.0 && x.trunc() == *x => Ok(Some(*x as u64)),
        Some(other) => Err(format!(
            "fault plan: {key} must be a non-negative integer, got {other:?}"
        )),
    }
}

fn get_f64(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::F64(x)) => Ok(Some(*x)),
        Some(Value::U64(n)) => Ok(Some(*n as f64)),
        Some(Value::I64(n)) => Ok(Some(*n as f64)),
        Some(other) => Err(format!("fault plan: {key} must be a number, got {other:?}")),
    }
}

fn get_str<'v>(v: &'v Value, key: &str) -> Result<Option<&'v str>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(other) => Err(format!("fault plan: {key} must be a string, got {other:?}")),
    }
}

fn get_array<'v>(v: &'v Value, key: &str) -> Result<Option<&'v [Value]>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Array(items)) => Ok(Some(items)),
        Some(other) => Err(format!("fault plan: {key} must be an array, got {other:?}")),
    }
}

fn require_u64(v: &Value, key: &str, at: &str) -> Result<u64, String> {
    get_u64(v, key)?.ok_or_else(|| format!("fault plan: {at}: missing {key}"))
}

fn require_f64(v: &Value, key: &str, at: &str) -> Result<f64, String> {
    get_f64(v, key)?.ok_or_else(|| format!("fault plan: {at}: missing {key}"))
}

/// One due change on the fabric, produced by [`FaultInjector::pop_due`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkChange {
    /// Scale one NIC direction's capacity to `scale` × nominal.
    Scale {
        /// Affected machine.
        node: usize,
        /// Affected direction.
        dir: LinkDir,
        /// New capacity fraction.
        scale: f64,
    },
    /// Take a machine's link down (both directions): kill in-flight
    /// transfers on its ports and admit no new ones.
    FlapDown {
        /// Affected machine.
        node: usize,
    },
    /// Restore a flapped link to nominal capacity.
    FlapUp {
        /// Affected machine.
        node: usize,
    },
}

impl LinkChange {
    /// Stable label for observation streams (`"scale"`, `"flap_down"`,
    /// `"flap_up"` — the discriminators of `results/events.schema.json`).
    pub fn kind(&self) -> &'static str {
        match self {
            LinkChange::Scale { .. } => "scale",
            LinkChange::FlapDown { .. } => "flap_down",
            LinkChange::FlapUp { .. } => "flap_up",
        }
    }

    /// The machine the change hits.
    pub fn node(&self) -> usize {
        match *self {
            LinkChange::Scale { node, .. }
            | LinkChange::FlapDown { node }
            | LinkChange::FlapUp { node } => node,
        }
    }

    /// The resulting capacity fraction: the `Scale` factor, `0.0` for a
    /// flap down, `1.0` for a flap up.
    pub fn capacity_fraction(&self) -> f64 {
        match *self {
            LinkChange::Scale { scale, .. } => scale,
            LinkChange::FlapDown { .. } => 0.0,
            LinkChange::FlapUp { .. } => 1.0,
        }
    }
}

/// Runtime-facing cursor over a [`FaultPlan`]: a merged, time-sorted
/// timeline of link changes plus the seeded loss stream and straggler
/// table. Built once per run; never rewinds.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    timeline: Vec<(SimTime, LinkChange)>,
    cursor: usize,
    loss_rate: f64,
    rng: SimRng,
    stragglers: Vec<StragglerSpec>,
    policy: RecoveryPolicy,
}

impl FaultInjector {
    /// Builds the injector for `plan`, with the loss stream forked from
    /// the world `seed`. Panics on an invalid plan — validate at the
    /// parse boundary for recoverable errors.
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        let mut timeline: Vec<(SimTime, LinkChange)> = Vec::new();
        for e in &plan.link_events {
            timeline.push((
                SimTime::from_micros(e.at_us),
                LinkChange::Scale {
                    node: e.node,
                    dir: e.dir,
                    scale: e.scale,
                },
            ));
        }
        for f in &plan.flaps {
            timeline.push((
                SimTime::from_micros(f.from_us),
                LinkChange::FlapDown { node: f.node },
            ));
            timeline.push((
                SimTime::from_micros(f.to_us),
                LinkChange::FlapUp { node: f.node },
            ));
        }
        // Stable sort: same-instant changes apply in plan order, with
        // flap edges after explicit scale events at the same instant
        // (insertion order above), keeping replay deterministic.
        timeline.sort_by_key(|&(t, _)| t);
        FaultInjector {
            timeline,
            cursor: 0,
            loss_rate: plan.loss_rate,
            rng: SimRng::new(seed ^ LOSS_SEED_XOR),
            stragglers: plan.stragglers.clone(),
            policy: plan.recovery,
        }
    }

    /// The recovery policy in force.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Earliest pending link change, or `MAX` when the timeline is spent.
    pub fn next_change_time(&self) -> SimTime {
        self.timeline
            .get(self.cursor)
            .map(|&(t, _)| t)
            .unwrap_or(SimTime::MAX)
    }

    /// Pops the next link change due at or before `now`, if any.
    pub fn pop_due(&mut self, now: SimTime) -> Option<LinkChange> {
        match self.timeline.get(self.cursor) {
            Some(&(t, change)) if t <= now => {
                self.cursor += 1;
                Some(change)
            }
            _ => None,
        }
    }

    /// True when the plan can lose transfers at all. When false,
    /// [`Self::should_drop`] is never called and the RNG never advances —
    /// the empty-plan identity depends on this.
    pub fn has_loss(&self) -> bool {
        self.loss_rate > 0.0
    }

    /// Draws the Bernoulli loss stream: true = drop this delivery. Call
    /// exactly once per candidate delivery, in delivery order, so the
    /// stream is reproducible.
    pub fn should_drop(&mut self) -> bool {
        debug_assert!(self.loss_rate > 0.0, "loss draw on a lossless plan");
        self.rng.next_f64() < self.loss_rate
    }

    /// Compute-time multiplier for `worker` at `iter`: the product of all
    /// matching straggler factors (1.0 when none match).
    pub fn compute_scale(&self, worker: usize, iter: u64) -> f64 {
        let mut scale = 1.0;
        for s in &self.stragglers {
            if s.worker == worker && iter >= s.from_iter && iter < s.to_iter {
                scale *= s.factor;
            }
        }
        scale
    }

    /// True when the plan slows any iteration of `worker`.
    pub fn has_straggler(&self, worker: usize) -> bool {
        self.stragglers.iter().any(|s| s.worker == worker)
    }
}

/// A change due on the *shared* cluster fabric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClusterChange {
    /// A link change; its node index addresses fabric machines.
    Link(LinkChange),
    /// A whole machine fails: its port goes down (killing every tenant's
    /// in-flight transfers there) and it leaves the healthy pool, so the
    /// driver checkpoints and migrates the jobs placed on it.
    MachineDown {
        /// The failing machine.
        machine: usize,
    },
    /// A failed machine restores: port revived, healthy pool rejoined.
    MachineUp {
        /// The restored machine.
        machine: usize,
    },
}

impl ClusterChange {
    /// Stable label for observation streams, extending [`LinkChange::kind`]
    /// with `"machine_down"` / `"machine_up"`.
    pub fn kind(&self) -> &'static str {
        match self {
            ClusterChange::Link(c) => c.kind(),
            ClusterChange::MachineDown { .. } => "machine_down",
            ClusterChange::MachineUp { .. } => "machine_up",
        }
    }

    /// The machine the change hits.
    pub fn machine(&self) -> usize {
        match *self {
            ClusterChange::Link(c) => c.node(),
            ClusterChange::MachineDown { machine } | ClusterChange::MachineUp { machine } => {
                machine
            }
        }
    }

    /// The resulting capacity fraction (see
    /// [`LinkChange::capacity_fraction`]; machine edges behave like flaps).
    pub fn capacity_fraction(&self) -> f64 {
        match *self {
            ClusterChange::Link(c) => c.capacity_fraction(),
            ClusterChange::MachineDown { .. } => 0.0,
            ClusterChange::MachineUp { .. } => 1.0,
        }
    }
}

/// One entry of the cluster fault timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterFaultEntry {
    /// The instant the change fires.
    pub at: SimTime,
    /// The job whose private plan the change was hoisted from, or `None`
    /// for cluster-scope changes that hit every tenant.
    pub owner: Option<usize>,
    /// The node index as the owning job's plan wrote it (job-local), kept
    /// so the owner's observation stream matches its solo run exactly.
    /// Cluster-scope entries carry the machine index here.
    pub local_node: usize,
    /// The change itself; link-change node indices are machine indices.
    pub change: ClusterChange,
}

/// The cluster-scope analogue of [`FaultInjector`]'s timeline: one merged,
/// time-sorted cursor over the cluster plan's link changes and machine
/// failures *plus* every tenant's hoisted job-private link events, so each
/// change applies to the shared fabric exactly once.
///
/// Per-job loss and straggler streams stay in the tenants' own
/// `FaultInjector`s (seeded via [`job_seed`]) — only link-level changes,
/// which touch shared ports, are hoisted here. Build order is the replay
/// contract: cluster-plan entries first, then each job's entries in job
/// order, each group in its plan's insertion order; [`Self::seal`]
/// stable-sorts by time, so same-instant changes fire in that order. A
/// single-job cluster therefore replays its plan in exactly the order the
/// solo [`FaultInjector`] would.
#[derive(Clone, Debug, Default)]
pub struct ClusterFaultInjector {
    timeline: Vec<ClusterFaultEntry>,
    cursor: usize,
    sealed: bool,
}

impl ClusterFaultInjector {
    /// An empty injector; add plans, then [`Self::seal`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cluster-scope plan: link events and flaps address machines
    /// directly, and machine failures contribute their down/up edges.
    /// Loss, stragglers, and recovery are *not* consumed here — the
    /// caller projects them into per-job plans.
    pub fn add_plan(&mut self, plan: &FaultPlan) {
        assert!(!self.sealed, "cluster fault timeline already sealed");
        for e in &plan.link_events {
            self.push(None, e.node, SimTime::from_micros(e.at_us), {
                ClusterChange::Link(LinkChange::Scale {
                    node: e.node,
                    dir: e.dir,
                    scale: e.scale,
                })
            });
        }
        for f in &plan.flaps {
            self.push(
                None,
                f.node,
                SimTime::from_micros(f.from_us),
                ClusterChange::Link(LinkChange::FlapDown { node: f.node }),
            );
            self.push(
                None,
                f.node,
                SimTime::from_micros(f.to_us),
                ClusterChange::Link(LinkChange::FlapUp { node: f.node }),
            );
        }
        for m in &plan.machine_failures {
            self.push(
                None,
                m.machine,
                SimTime::from_micros(m.at_us),
                ClusterChange::MachineDown { machine: m.machine },
            );
            if let Some(restore) = m.restore_us {
                self.push(
                    None,
                    m.machine,
                    SimTime::from_micros(restore),
                    ClusterChange::MachineUp { machine: m.machine },
                );
            }
        }
    }

    /// Hoists `job`'s private link events and flaps onto the shared
    /// timeline, translating job-local node indices to machines via
    /// `machine_of`. Insertion order matches [`FaultInjector::new`]
    /// (link events, then flap edge pairs), preserving solo-run replay
    /// order for single-job clusters.
    pub fn add_job_links(
        &mut self,
        job: usize,
        plan: &FaultPlan,
        machine_of: &dyn Fn(usize) -> usize,
    ) {
        assert!(!self.sealed, "cluster fault timeline already sealed");
        for e in &plan.link_events {
            self.push(Some(job), e.node, SimTime::from_micros(e.at_us), {
                ClusterChange::Link(LinkChange::Scale {
                    node: machine_of(e.node),
                    dir: e.dir,
                    scale: e.scale,
                })
            });
        }
        for f in &plan.flaps {
            let machine = machine_of(f.node);
            self.push(
                Some(job),
                f.node,
                SimTime::from_micros(f.from_us),
                ClusterChange::Link(LinkChange::FlapDown { node: machine }),
            );
            self.push(
                Some(job),
                f.node,
                SimTime::from_micros(f.to_us),
                ClusterChange::Link(LinkChange::FlapUp { node: machine }),
            );
        }
    }

    fn push(
        &mut self,
        owner: Option<usize>,
        local_node: usize,
        at: SimTime,
        change: ClusterChange,
    ) {
        self.timeline.push(ClusterFaultEntry {
            at,
            owner,
            local_node,
            change,
        });
    }

    /// Freezes the timeline: stable time sort, then cursor playback only.
    pub fn seal(&mut self) {
        assert!(!self.sealed, "cluster fault timeline already sealed");
        self.timeline.sort_by_key(|e| e.at);
        self.sealed = true;
    }

    /// True when no change was ever added.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty()
    }

    /// Earliest pending change, or `MAX` when the timeline is spent.
    pub fn next_change_time(&self) -> SimTime {
        debug_assert!(self.sealed, "seal the timeline before playback");
        self.timeline
            .get(self.cursor)
            .map(|e| e.at)
            .unwrap_or(SimTime::MAX)
    }

    /// Pops the next change due at or before `now`, if any.
    pub fn pop_due(&mut self, now: SimTime) -> Option<ClusterFaultEntry> {
        debug_assert!(self.sealed, "seal the timeline before playback");
        match self.timeline.get(self.cursor) {
            Some(e) if e.at <= now => {
                self.cursor += 1;
                Some(*e)
            }
            _ => None,
        }
    }

    /// The full sealed timeline (static, never rewinds) — the driver
    /// scans it to price deferred placements after a capacity shortage.
    pub fn timeline(&self) -> &[ClusterFaultEntry] {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            link_events: vec![
                LinkEvent {
                    at_us: 1_000_000,
                    node: 2,
                    dir: LinkDir::Up,
                    scale: 0.25,
                },
                LinkEvent {
                    at_us: 3_000_000,
                    node: 2,
                    dir: LinkDir::Up,
                    scale: 1.0,
                },
            ],
            flaps: vec![LinkFlap {
                node: 1,
                from_us: 2_000_000,
                to_us: 2_200_000,
            }],
            loss_rate: 0.001,
            stragglers: vec![StragglerSpec {
                worker: 0,
                from_iter: 3,
                to_iter: 5,
                factor: 2.5,
            }],
            machine_failures: vec![MachineFailure {
                machine: 3,
                at_us: 4_000_000,
                restore_us: Some(9_000_000),
            }],
            recovery: RecoveryPolicy {
                timeout_us: 100_000,
                max_retries: 6,
            },
        }
    }

    #[test]
    fn json_round_trip_preserves_the_plan() {
        let plan = sample_plan();
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).expect("parses");
        assert_eq!(back, plan);
    }

    #[test]
    fn minimal_document_is_the_empty_plan() {
        let plan = FaultPlan::from_json("{\"schema_version\": 1}").expect("parses");
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::empty());
    }

    #[test]
    fn bad_documents_are_rejected_with_context() {
        for (doc, needle) in [
            ("{}", "schema_version"),
            ("{\"schema_version\": 3}", "unsupported"),
            (
                "{\"schema_version\": 2, \"machine_failures\": [{\"machine\": 0, \
                 \"at_us\": 7, \"restore_us\": 7}]}",
                "empty interval",
            ),
            ("{\"schema_version\": 1, \"loss_rate\": 1.5}", "loss_rate"),
            (
                "{\"schema_version\": 1, \"flaps\": [{\"node\": 0, \"from_us\": 5, \"to_us\": 5}]}",
                "empty interval",
            ),
            (
                "{\"schema_version\": 1, \"link_events\": [{\"at_us\": 0, \"node\": 0, \
                 \"dir\": \"Sideways\", \"scale\": 0.5}]}",
                "bad dir",
            ),
            (
                "{\"schema_version\": 1, \"link_events\": [{\"at_us\": 0, \"node\": 0, \
                 \"dir\": \"Up\", \"scale\": 0.0}]}",
                "scale",
            ),
            (
                "{\"schema_version\": 1, \"stragglers\": [{\"worker\": 0, \"from_iter\": 2, \
                 \"to_iter\": 2, \"factor\": 2.0}]}",
                "iteration range",
            ),
            (
                "{\"schema_version\": 1, \"recovery\": {\"timeout_us\": 0, \"max_retries\": 3}}",
                "timeout",
            ),
        ] {
            let err = FaultPlan::from_json(doc).expect_err(doc);
            assert!(err.contains(needle), "{doc}: {err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn injector_timeline_is_time_sorted_and_single_pass() {
        let mut inj = FaultInjector::new(&sample_plan(), 7);
        let mut times = Vec::new();
        loop {
            let t = inj.next_change_time();
            if t == SimTime::MAX {
                break;
            }
            let change = inj.pop_due(t).expect("due change");
            times.push((t, change));
        }
        assert_eq!(times.len(), 4);
        assert!(times.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(
            times[1].1,
            LinkChange::FlapDown { node: 1 },
            "flap down at 2s sits between the 1s degrade and 2.2s restore"
        );
        assert!(inj.pop_due(SimTime::MAX).is_none(), "timeline spent");
    }

    #[test]
    fn pop_due_holds_future_changes_back() {
        let mut inj = FaultInjector::new(&sample_plan(), 7);
        assert_eq!(inj.next_change_time(), SimTime::from_micros(1_000_000));
        assert!(inj.pop_due(SimTime::from_micros(999_999)).is_none());
        assert!(inj.pop_due(SimTime::from_micros(1_000_000)).is_some());
    }

    #[test]
    fn loss_stream_is_seed_deterministic_and_seed_sensitive() {
        let plan = FaultPlan {
            loss_rate: 0.5,
            ..FaultPlan::empty()
        };
        let draw = |seed: u64| -> Vec<bool> {
            let mut inj = FaultInjector::new(&plan, seed);
            (0..64).map(|_| inj.should_drop()).collect()
        };
        assert_eq!(draw(1), draw(1), "same seed, same stream");
        assert_ne!(draw(1), draw(2), "different seed, different stream");
        let hits = draw(3).iter().filter(|&&d| d).count();
        assert!(
            (16..=48).contains(&hits),
            "rate roughly honoured: {hits}/64"
        );
    }

    #[test]
    fn straggler_scale_applies_only_in_range() {
        let inj = FaultInjector::new(&sample_plan(), 1);
        assert_eq!(inj.compute_scale(0, 2), 1.0);
        assert_eq!(inj.compute_scale(0, 3), 2.5);
        assert_eq!(inj.compute_scale(0, 4), 2.5);
        assert_eq!(inj.compute_scale(0, 5), 1.0);
        assert_eq!(inj.compute_scale(1, 3), 1.0, "other workers unaffected");
        assert!(inj.has_straggler(0));
        assert!(!inj.has_straggler(1));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RecoveryPolicy {
            timeout_us: 100,
            max_retries: 4,
        };
        assert_eq!(p.backoff(1), SimTime::from_micros(100));
        assert_eq!(p.backoff(2), SimTime::from_micros(200));
        assert_eq!(p.backoff(3), SimTime::from_micros(400));
        // Deep attempts clamp the shift instead of overflowing.
        assert_eq!(p.backoff(80), SimTime::from_micros(100 << 20));
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        let inj = FaultInjector::new(&plan, 9);
        assert_eq!(inj.next_change_time(), SimTime::MAX);
        assert!(!inj.has_loss());
        assert_eq!(inj.compute_scale(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn injector_rejects_invalid_plans() {
        let plan = FaultPlan {
            loss_rate: 2.0,
            ..FaultPlan::empty()
        };
        FaultInjector::new(&plan, 1);
    }

    #[test]
    fn v1_and_v2_documents_both_parse() {
        let v1 = FaultPlan::from_json("{\"schema_version\": 1}").expect("v1 parses");
        assert!(v1.is_empty());
        let v2 = FaultPlan::from_json(
            "{\"schema_version\": 2, \"machine_failures\": [{\"machine\": 1, \"at_us\": 50}]}",
        )
        .expect("v2 parses");
        assert_eq!(
            v2.machine_failures,
            vec![MachineFailure {
                machine: 1,
                at_us: 50,
                restore_us: None,
            }]
        );
        assert!(!v2.is_empty());
    }

    #[test]
    fn job_seed_is_identity_for_job_zero_and_splits_otherwise() {
        assert_eq!(job_seed(42, 0), 42, "job 0 keeps the solo seed");
        let seeds: Vec<u64> = (0..8).map(|j| job_seed(42, j)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b, "split seeds collide");
            }
        }
    }

    #[test]
    fn cluster_injector_merges_machine_edges_into_the_timeline() {
        let mut inj = ClusterFaultInjector::new();
        inj.add_plan(&sample_plan());
        inj.seal();
        let mut entries = Vec::new();
        loop {
            let t = inj.next_change_time();
            if t == SimTime::MAX {
                break;
            }
            entries.push(inj.pop_due(t).expect("due"));
        }
        // 2 link events + flap pair + machine down/up edges.
        assert_eq!(entries.len(), 6);
        assert!(entries.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(entries.iter().all(|e| e.owner.is_none()));
        assert_eq!(
            entries[4].change,
            ClusterChange::MachineDown { machine: 3 },
            "machine failure fires at 4s, after the 3s link restore"
        );
        assert_eq!(entries[4].change.kind(), "machine_down");
        assert_eq!(entries[4].change.capacity_fraction(), 0.0);
        assert_eq!(
            entries[5].change,
            ClusterChange::MachineUp { machine: 3 },
            "restore edge lands last at 9s"
        );
        assert!(inj.pop_due(SimTime::MAX).is_none(), "timeline spent");
    }

    #[test]
    fn single_job_cluster_timeline_matches_the_solo_injector() {
        // A one-job cluster hoists the job's private links with an
        // identity machine map; playback order must equal FaultInjector's.
        let plan = FaultPlan {
            machine_failures: vec![],
            ..sample_plan()
        };
        let mut solo = FaultInjector::new(&plan, 7);
        let mut cluster = ClusterFaultInjector::new();
        cluster.add_job_links(0, &plan, &|n| n);
        cluster.seal();
        loop {
            let t_solo = solo.next_change_time();
            let t_cluster = cluster.next_change_time();
            assert_eq!(t_solo, t_cluster);
            if t_solo == SimTime::MAX {
                break;
            }
            let solo_change = solo.pop_due(t_solo).expect("solo due");
            let entry = cluster.pop_due(t_cluster).expect("cluster due");
            assert_eq!(entry.change, ClusterChange::Link(solo_change));
            assert_eq!(entry.owner, Some(0));
            assert_eq!(entry.local_node, solo_change.node());
        }
    }

    #[test]
    fn cluster_injector_orders_same_instant_changes_by_insertion() {
        // A cluster-scope change and a hoisted job change at the same
        // instant fire in build order: cluster plan first, then jobs.
        let cluster_plan = FaultPlan {
            machine_failures: vec![MachineFailure {
                machine: 0,
                at_us: 100,
                restore_us: None,
            }],
            ..FaultPlan::empty()
        };
        let job_plan = FaultPlan {
            link_events: vec![LinkEvent {
                at_us: 100,
                node: 1,
                dir: LinkDir::Down,
                scale: 0.5,
            }],
            ..FaultPlan::empty()
        };
        let mut inj = ClusterFaultInjector::new();
        inj.add_plan(&cluster_plan);
        inj.add_job_links(2, &job_plan, &|n| n + 4);
        inj.seal();
        let t = SimTime::from_micros(100);
        let first = inj.pop_due(t).expect("first");
        assert_eq!(first.change, ClusterChange::MachineDown { machine: 0 });
        let second = inj.pop_due(t).expect("second");
        assert_eq!(second.owner, Some(2));
        assert_eq!(second.local_node, 1, "owner sees its job-local node");
        assert_eq!(
            second.change,
            ClusterChange::Link(LinkChange::Scale {
                node: 5,
                dir: LinkDir::Down,
                scale: 0.5,
            }),
            "fabric sees the translated machine index"
        );
        assert!(inj.pop_due(SimTime::MAX).is_none());
    }
}
