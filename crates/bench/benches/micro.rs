//! Microbenchmarks of the building blocks: the scheduler's hot path
//! (Algorithm 1's queue operations), the network state machine, the
//! event queue, and GP fitting — the costs a production deployment of
//! this code would care about.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bs_core::{ByteScheduler, Scheduler, WorkItem};
use bs_net::{NetConfig, Network, NodeId, Transport};
use bs_sim::{EventQueue, SimRng, SimTime};
use bs_tune::gp::Gp;

/// Algorithm 1's submit → poll → complete cycle at a realistic queue
/// depth (a VGG16 iteration at δ = 1 MB is ~550 subtasks per direction).
fn bench_scheduler_cycle(c: &mut Criterion) {
    c.bench_function("core_algorithm1_cycle_1k_items", |b| {
        b.iter(|| {
            let mut s = ByteScheduler::new(1 << 20, 8 << 20, 2);
            let now = SimTime::ZERO;
            for i in 0..1_000u64 {
                s.submit(
                    now,
                    WorkItem {
                        lane: (i % 2) as usize,
                        priority: i % 16,
                        bytes: 1 << 20,
                        token: i,
                    },
                );
            }
            let mut done = 0usize;
            while done < 1_000 {
                let batch = s.poll(now);
                for item in &batch {
                    s.complete(now, item.lane, item.bytes);
                }
                done += batch.len();
            }
            black_box(done)
        })
    });
}

/// Point-to-point fabric throughput: an incast of 1 000 transfers.
fn bench_network_incast(c: &mut Criterion) {
    c.bench_function("net_incast_1k_transfers", |b| {
        b.iter(|| {
            let cfg = NetConfig::gbps(100.0, Transport::rdma());
            let mut net = Network::new(9, cfg);
            for i in 0..1_000u64 {
                net.submit(
                    SimTime::ZERO,
                    NodeId((i % 8) as usize),
                    NodeId(8),
                    1 << 20,
                    i,
                );
            }
            let mut events = 0usize;
            loop {
                let t = net.next_event_time();
                if t.is_never() {
                    break;
                }
                events += net.advance(t).len();
            }
            black_box(events)
        })
    });
}

/// Calendar-queue ops.
fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim_event_queue_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::new(1);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos(rng.below(1 << 40)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

/// GP fit + predict at the observation counts BO actually uses.
fn bench_gp_fit(c: &mut Criterion) {
    let mut rng = SimRng::new(7);
    let xs: Vec<Vec<f64>> = (0..20)
        .map(|_| vec![rng.next_f64(), rng.next_f64()])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.4).powi(2) + x[1]).collect();
    c.bench_function("tune_gp_fit_predict_20_samples", |b| {
        b.iter(|| {
            let gp = Gp::fit(&xs, &ys);
            black_box(gp.predict(&[0.3, 0.7]))
        })
    });
}

/// One full small simulation, the unit everything above composes into.
fn bench_end_to_end_sim(c: &mut Criterion) {
    use bs_harness::{Fidelity, Setup};
    use bs_runtime::{run, SchedulerKind};
    c.bench_function("end_to_end_resnet50_ps_16gpu", |b| {
        b.iter(|| {
            let mut cfg = Setup::MxnetPsRdma.config(
                bs_models::zoo::resnet50(),
                16,
                100.0,
                SchedulerKind::ByteScheduler {
                    partition: 4 << 20,
                    credit: 16 << 20,
                },
            );
            Fidelity::quick().apply(&mut cfg);
            black_box(run(&cfg).speed)
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_scheduler_cycle, bench_network_incast, bench_event_queue,
              bench_gp_fit, bench_end_to_end_sim
}
criterion_main!(micro);
