//! One Criterion benchmark per paper table/figure: each benchmark runs
//! the experiment's core measurement at smoke fidelity, so `cargo bench`
//! both regenerates every result's machinery end-to-end and tracks the
//! simulator's own performance over time.
//!
//! The printed *numbers* for EXPERIMENTS.md come from the harness
//! binaries at full fidelity (`cargo run -p bs-harness --release --bin
//! all`); these benches are the regression net around them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bs_harness::experiments::{fig02, fig04, fig09, fig13, fig14, scaling, table1};
use bs_harness::{Fidelity, Setup};
use bs_runtime::{run, SchedulerKind};

fn fid() -> Fidelity {
    Fidelity::quick()
}

/// Figure 2: the contrived 3-layer example, FIFO vs priority+partition.
fn bench_fig02(c: &mut Criterion) {
    c.bench_function("fig02_contrived_example", |b| {
        b.iter(|| black_box(fig02::run_experiment(fid())))
    });
}

/// Figure 4: one point of each sweep (the full sweep is the binary's job).
fn bench_fig04(c: &mut Criterion) {
    let f = fid();
    c.bench_function("fig04_partition_point", |b| {
        b.iter(|| {
            let mut cfg = Setup::MxnetPsTcp.config(
                bs_models::zoo::vgg16(),
                32,
                10.0,
                SchedulerKind::FifoPartitioned {
                    partition: 160 * 1024,
                },
            );
            f.apply(&mut cfg);
            black_box(run(&cfg).speed)
        })
    });
    c.bench_function("fig04_credit_point", |b| {
        b.iter(|| {
            let mut cfg = Setup::MxnetPsTcp.config(
                bs_models::zoo::vgg16(),
                32,
                10.0,
                SchedulerKind::FifoCredit {
                    partition: 160 * 1024,
                    credit: 640 * 1024,
                },
            );
            f.apply(&mut cfg);
            black_box(run(&cfg).speed)
        })
    });
}

/// Figure 9: the 7-sample BO session with GP posterior.
fn bench_fig09(c: &mut Criterion) {
    c.bench_function("fig09_bo_session", |b| {
        b.iter(|| black_box(fig09::run_experiment(fid())))
    });
}

/// Figures 10/11/12: one (setup, gpus) measurement per model — baseline,
/// auto-tuned ByteScheduler and P3 where applicable.
fn bench_scaling(c: &mut Criterion) {
    let f = fid();
    for (name, model) in [
        ("fig10_vgg16_point", bs_models::zoo::vgg16()),
        ("fig11_resnet50_point", bs_models::zoo::resnet50()),
        ("fig12_transformer_point", bs_models::zoo::transformer()),
    ] {
        let m = model.clone();
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(scaling::measure_point(
                    Setup::MxnetPsTcp,
                    m.clone(),
                    16,
                    100.0,
                    f,
                ))
            })
        });
    }
}

/// Figure 13: one bandwidth cell (baseline + fixed + tuned).
fn bench_fig13(c: &mut Criterion) {
    let f = fid();
    c.bench_function("fig13_bandwidth_cell", |b| {
        b.iter(|| {
            let mut base = Setup::MxnetPsRdma.config(
                bs_models::zoo::resnet50(),
                fig13::GPUS,
                10.0,
                SchedulerKind::Baseline,
            );
            f.apply(&mut base);
            let baseline = run(&base).speed;
            let out = bs_harness::tune(&base, Setup::MxnetPsRdma.search_space(), 4, 3);
            black_box((baseline, out.speed))
        })
    });
}

/// Figure 14: one seeded tuner race (BO vs the reference grid target).
fn bench_fig14(c: &mut Criterion) {
    let f = fid();
    c.bench_function("fig14_search_cost_seed", |b| {
        b.iter(|| {
            let mut base = Setup::MxnetPsRdma.config(
                bs_models::zoo::resnet50(),
                fig14::GPUS,
                100.0,
                SchedulerKind::Baseline,
            );
            f.apply(&mut base);
            black_box(bs_harness::tune(
                &base,
                Setup::MxnetPsRdma.search_space(),
                6,
                1,
            ))
        })
    });
}

/// Table 1: one tuning cell (best δ, c for one model × architecture).
fn bench_table1(c: &mut Criterion) {
    let f = fid();
    c.bench_function("table1_tuning_cell", |b| {
        b.iter(|| {
            let mut base = Setup::MxnetNcclRdma.config(
                bs_models::zoo::resnet50(),
                table1::GPUS,
                100.0,
                SchedulerKind::Baseline,
            );
            f.apply(&mut base);
            black_box(bs_harness::tune(
                &base,
                Setup::MxnetNcclRdma.search_space(),
                4,
                21,
            ))
        })
    });
}

/// Ablation: the naive whole-tensor shard placement vs MXNet's big-array
/// splitting in the baseline (the load-imbalance mechanism of §6.2).
fn bench_ablation_placement(c: &mut Criterion) {
    let f = fid();
    c.bench_function("ablation_shard_placement", |b| {
        b.iter(|| {
            let mut naive = Setup::MxnetPsRdma.config(
                bs_models::zoo::vgg16(),
                32,
                100.0,
                SchedulerKind::Baseline,
            );
            f.apply(&mut naive);
            let mut split = naive.clone();
            if let bs_runtime::Arch::Ps {
                baseline_bigarray_split,
                ..
            } = &mut split.arch
            {
                *baseline_bigarray_split = true;
            }
            black_box((run(&naive).speed, run(&split).speed))
        })
    });
}

/// Full Figure 4 sweep at smoke fidelity (exercises the parallel runner).
fn bench_fig04_full(c: &mut Criterion) {
    c.bench_function("fig04_full_sweep_quick", |b| {
        b.iter(|| black_box(fig04::run_experiment(fid())))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig02, bench_fig04, bench_fig09, bench_scaling,
              bench_fig13, bench_fig14, bench_table1,
              bench_ablation_placement, bench_fig04_full
}
criterion_main!(figures);
