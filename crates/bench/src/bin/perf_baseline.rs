//! Tracked performance runner: times the macro scenarios and fabric
//! microbenchmarks that gate simulator-performance PRs, and writes the
//! numbers to `BENCH_<n>.json` (committed, so the trajectory is diffable
//! across PRs). Scenario definitions live in [`bs_bench::baseline`],
//! shared with the CI regression gate (`bin/perf_gate`) so the two
//! always time the same thing.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p bs-bench --bin perf_baseline
//! ```
//!
//! Environment knobs:
//!
//! - `BS_BENCH_OUT`     — output path (default `BENCH_1.json`).
//! - `BS_BENCH_REPS`    — wall-clock repetitions per scenario (default 3;
//!   the minimum is reported, which is the standard way to reject noise).
//! - `BS_BENCH_QUICK`   — when set, one repetition and shrunken scenario
//!   sizes; used by the CI smoke job where absolute numbers don't matter.
//! - `BS_BENCH_THREADS` — thread count for the `*_par` cluster scenarios
//!   (default: every available core).
//! - `BS_BENCH_BEFORE`  — path to a previous `BENCH_*.json`; its `results`
//!   section is embedded under `before` and per-scenario speedups are
//!   computed, so a refactor PR can carry its own before/after evidence.
//!
//! Metrics per macro scenario: wall seconds (min over reps), simulated
//! communication completions ("events") and events/sec, peak in-flight
//! transfers, and the simulated training speed (which must not change
//! across a pure-performance refactor — determinism is checked by the
//! golden-trace test, not here). The mixed cluster scenarios come in
//! `_seq`/`_par` pairs; the `_par` entry records its thread count and
//! wall-clock speedup over the sequential twin.

use std::time::Instant;

use bs_bench::baseline::{
    bench_threads, cluster_4job_macro, cluster_mixed_macro, get_f64, macro_scenarios, obj,
    push_field, replay_service_macro, run_cluster_macro, run_macro, run_replay_macro, speedups,
};
use bs_net::{FluidNetwork, NetConfig, Network, NodeId, Transport};
use bs_sim::SimTime;
use serde::Value;

/// Drains a fluid network to idle, stepping event by event.
fn drain_fluid(n: &mut FluidNetwork) {
    loop {
        let t = n.next_event_time();
        if t.is_never() {
            break;
        }
        n.advance(t);
    }
}

/// Sequential-churn micro: one flow at a time, many of them. Before the
/// slot free-list this scaled quadratically (every `reallocate` walked a
/// `frozen` vector sized by every transfer ever issued).
fn micro_fluid_sequential(total: usize) -> (f64, u64) {
    let mut n = FluidNetwork::new(16, NetConfig::gbps(8.0, Transport::ideal()));
    let t0 = Instant::now();
    let mut now = SimTime::ZERO;
    for i in 0..total {
        n.submit(now, NodeId(i % 8), NodeId(8 + (i % 8)), 1_000_000, i as u64);
        drain_fluid(&mut n);
        now = n.next_event_time().min(now + SimTime::from_millis(2));
    }
    (t0.elapsed().as_secs_f64(), total as u64)
}

/// Concurrent-churn micro: rounds of 64 simultaneous flows, drained to
/// idle — `reallocate` under real contention.
fn micro_fluid_concurrent(rounds: usize) -> (f64, u64) {
    let mut n = FluidNetwork::new(16, NetConfig::gbps(8.0, Transport::ideal()));
    let t0 = Instant::now();
    let mut now = SimTime::ZERO;
    let mut submitted = 0u64;
    for round in 0..rounds {
        for f in 0..64usize {
            let src = f % 8;
            let dst = 8 + ((f + round) % 8);
            n.submit(now, NodeId(src), NodeId(dst), 500_000, submitted);
            submitted += 1;
        }
        drain_fluid(&mut n);
        now += SimTime::from_millis(10);
    }
    (t0.elapsed().as_secs_f64(), submitted)
}

/// Poll micro: `next_event_time` on a fluid fabric with 64 active flows.
fn micro_fluid_poll(calls: usize) -> (f64, u64) {
    let mut n = FluidNetwork::new(16, NetConfig::gbps(8.0, Transport::ideal()));
    for f in 0..64usize {
        n.submit(
            SimTime::ZERO,
            NodeId(f % 8),
            NodeId(8 + (f % 8)),
            1_000_000 + f as u64 * 1000,
            f as u64,
        );
    }
    let t0 = Instant::now();
    let mut acc = SimTime::ZERO;
    for _ in 0..calls {
        acc = acc.max(std::hint::black_box(n.next_event_time()));
    }
    std::hint::black_box(acc);
    (t0.elapsed().as_secs_f64(), calls as u64)
}

/// Poll micro: `next_event_time` on the FIFO fabric with 8 on-wire
/// transfers and deep queues.
fn micro_fifo_poll(calls: usize) -> (f64, u64) {
    let mut n = Network::new(16, NetConfig::gbps(8.0, Transport::ideal()));
    for f in 0..64usize {
        n.submit(
            SimTime::ZERO,
            NodeId(f % 8),
            NodeId(8 + (f % 8)),
            1_000_000,
            f as u64,
        );
    }
    let t0 = Instant::now();
    let mut acc = SimTime::ZERO;
    for _ in 0..calls {
        acc = acc.max(std::hint::black_box(n.next_event_time()));
    }
    std::hint::black_box(acc);
    (t0.elapsed().as_secs_f64(), calls as u64)
}

fn micro_entry(name: &str, wall: f64, ops: u64) -> Value {
    eprintln!(
        "  {:<28} {:>8.1} ms wall, {} ops, {:>12.0} ops/sec",
        name,
        wall * 1e3,
        ops,
        ops as f64 / wall
    );
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("wall_sec", Value::F64(wall)),
        ("ops", Value::U64(ops)),
        ("ops_per_sec", Value::F64(ops as f64 / wall)),
    ])
}

fn main() {
    let quick = std::env::var("BS_BENCH_QUICK").is_ok();
    let reps: usize = std::env::var("BS_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1 } else { 3 })
        .max(1);
    let out_path = std::env::var("BS_BENCH_OUT").unwrap_or_else(|_| "BENCH_1.json".to_string());
    let threads = bench_threads();

    eprintln!("macro scenarios ({reps} reps, min wall):");
    let mut macros: Vec<Value> = macro_scenarios(quick)
        .iter()
        .map(|s| run_macro(s, reps))
        .collect();
    macros.push(run_cluster_macro(&cluster_4job_macro(quick), reps));
    for (name, n_ps, n_ar) in [
        ("cluster_8job_mixed", 3usize, 5usize),
        ("cluster_16job_mixed", 6, 10),
    ] {
        let seq = cluster_mixed_macro(&format!("{name}_seq"), n_ps, n_ar, quick);
        let seq_entry = run_cluster_macro(&seq, reps);
        let seq_wall = get_f64(&seq_entry, "wall_sec");
        macros.push(seq_entry);
        // At least 2, so the `_par` entry always exercises the parallel
        // core (and reports its overhead honestly) even on one core.
        let mut par = cluster_mixed_macro(&format!("{name}_par"), n_ps, n_ar, quick);
        par.cluster.threads = threads.max(2);
        let mut par_entry = run_cluster_macro(&par, reps);
        if let (Some(sw), Some(pw)) = (seq_wall, get_f64(&par_entry, "wall_sec")) {
            if pw > 0.0 {
                push_field(&mut par_entry, "speedup_vs_seq", Value::F64(sw / pw));
            }
        }
        macros.push(par_entry);
    }
    macros.push(run_replay_macro(&replay_service_macro(quick), reps));

    eprintln!("micro benches:");
    let scale = if quick { 10 } else { 1 };
    let micros = vec![
        {
            let (w, ops) = micro_fluid_sequential(10_000 / scale);
            micro_entry("fluid_sequential_churn", w, ops)
        },
        {
            let (w, ops) = micro_fluid_concurrent(50 / scale.min(10));
            micro_entry("fluid_concurrent_churn", w, ops)
        },
        {
            let (w, ops) = micro_fluid_poll(200_000 / scale);
            micro_entry("fluid_poll", w, ops)
        },
        {
            let (w, ops) = micro_fifo_poll(200_000 / scale);
            micro_entry("fifo_poll", w, ops)
        },
    ];

    let results = obj(vec![
        ("macro", Value::Array(macros)),
        ("micro", Value::Array(micros)),
    ]);

    let mut doc = vec![
        ("bench", Value::Str("perf_baseline".to_string())),
        ("quick", Value::Bool(quick)),
        ("reps", Value::U64(reps as u64)),
        (
            "units",
            obj(vec![
                (
                    "wall_sec",
                    Value::Str("min wall-clock seconds over reps".to_string()),
                ),
                (
                    "events_per_sec",
                    Value::Str("simulated comm completions per wall second".to_string()),
                ),
                (
                    "ops_per_sec",
                    Value::Str("micro-bench operations per wall second".to_string()),
                ),
            ]),
        ),
        ("results", results.clone()),
    ];

    if let Ok(before_path) = std::env::var("BS_BENCH_BEFORE") {
        // A missing or malformed baseline skips the comparison instead of
        // discarding the measurements we just paid for.
        match std::fs::read_to_string(&before_path)
            .map_err(|e| e.to_string())
            .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
        {
            Ok(before) => {
                let before_results = before
                    .get("results")
                    .cloned()
                    .unwrap_or_else(|| before.clone());
                doc.push((
                    "speedup_wall",
                    obj(vec![
                        (
                            "macro",
                            speedups(&before_results, &results, "macro", "wall_sec"),
                        ),
                        (
                            "micro",
                            speedups(&before_results, &results, "micro", "wall_sec"),
                        ),
                    ]),
                ));
                doc.push(("before", before_results));
            }
            Err(e) => eprintln!("warning: ignoring BS_BENCH_BEFORE={before_path}: {e}"),
        }
    }

    let json = serde_json::to_string_pretty(&obj(doc)).expect("serialise bench output");
    if let Err(e) = std::fs::write(&out_path, json + "\n") {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
