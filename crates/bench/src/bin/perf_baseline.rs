//! Tracked performance runner: times the macro scenarios and fabric
//! microbenchmarks that gate simulator-performance PRs, and writes the
//! numbers to `BENCH_<n>.json` (committed, so the trajectory is diffable
//! across PRs).
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p bs-bench --bin perf_baseline
//! ```
//!
//! Environment knobs:
//!
//! - `BS_BENCH_OUT`    — output path (default `BENCH_1.json`).
//! - `BS_BENCH_REPS`   — wall-clock repetitions per scenario (default 3;
//!   the minimum is reported, which is the standard way to reject noise).
//! - `BS_BENCH_QUICK`  — when set, one repetition and shrunken scenario
//!   sizes; used by the CI smoke job where absolute numbers don't matter.
//! - `BS_BENCH_BEFORE` — path to a previous `BENCH_*.json`; its `results`
//!   section is embedded under `before` and per-scenario speedups are
//!   computed, so a refactor PR can carry its own before/after evidence.
//!
//! Metrics per macro scenario: wall seconds (min over reps), simulated
//! communication completions ("events") and events/sec, peak in-flight
//! transfers, and the simulated training speed (which must not change
//! across a pure-performance refactor — determinism is checked by the
//! golden-trace test, not here).

use std::time::Instant;

use bs_cluster::{run_cluster, ClusterConfig, JobSpec, PlacementPolicy};
use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bs_net::{FabricModel, FluidNetwork, NetConfig, Network, NodeId, Transport};
use bs_runtime::{run, Arch, SchedulerKind, WorldConfig};
use bs_sim::SimTime;
use serde::Value;

/// The comm-heavy toy model used across the runtime tests: a big tensor
/// near the input (VGG-like inversion) so FIFO order hurts and the
/// scheduler has real work to do.
fn comm_heavy() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
        .explicit(
            "l0",
            40_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l1",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l2",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l3",
            1_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .build()
}

struct MacroScenario {
    name: &'static str,
    cfg: WorldConfig,
}

fn macro_scenarios(quick: bool) -> Vec<MacroScenario> {
    let iters = if quick { 5 } else { 20 };
    let net = NetConfig::gbps(10.0, Transport::tcp());
    let bs = SchedulerKind::ByteScheduler {
        partition: 500_000,
        credit: 2_000_000,
    };
    let mk = |arch: Arch, engine, sched, fabric| {
        let mut c = WorldConfig::new(comm_heavy(), 4, arch, net, engine, sched);
        c.iters = iters;
        c.warmup = 2;
        c.jitter = 0.0;
        c.seed = 1;
        c.fabric = fabric;
        c
    };
    vec![
        MacroScenario {
            name: "ps_fifo_bytescheduler",
            cfg: mk(
                Arch::ps(4),
                bs_engine::EngineConfig::mxnet_ps(),
                bs,
                FabricModel::SerialFifo,
            ),
        },
        MacroScenario {
            name: "ps_fluid_bytescheduler",
            cfg: mk(
                Arch::ps(4),
                bs_engine::EngineConfig::mxnet_ps(),
                bs,
                FabricModel::FairShare,
            ),
        },
        MacroScenario {
            name: "allreduce_bytescheduler",
            cfg: mk(
                Arch::allreduce(),
                bs_engine::EngineConfig::mxnet_allreduce(),
                SchedulerKind::ByteScheduler {
                    partition: 2_000_000,
                    credit: 8_000_000,
                },
                FabricModel::SerialFifo,
            ),
        },
    ]
}

/// Cluster-mode macro: 4 comm-heavy jobs packed onto 8 machines of one
/// shared fluid fabric — times the multi-job driver's tag demuxing and
/// per-job advance loop under real contention. Events are total fabric
/// deliveries across all tenants.
fn run_cluster_macro(quick: bool, reps: usize) -> Value {
    let iters = if quick { 5 } else { 20 };
    let net = NetConfig::gbps(10.0, Transport::tcp());
    let specs: Vec<JobSpec> = (0..4)
        .map(|j| {
            let mut c = WorldConfig::new(
                comm_heavy(),
                2,
                Arch::ps(2),
                net,
                bs_engine::EngineConfig::mxnet_ps(),
                if j % 2 == 0 {
                    SchedulerKind::ByteScheduler {
                        partition: 500_000,
                        credit: 2_000_000,
                    }
                } else {
                    SchedulerKind::Baseline
                },
            );
            c.iters = iters;
            c.warmup = 2;
            c.jitter = 0.0;
            c.seed = 1 + j as u64;
            JobSpec::train(format!("job{j}"), c)
        })
        .collect();
    let mut cluster = ClusterConfig::new(8, net);
    cluster.fabric = FabricModel::FairShare;
    cluster.placement = PlacementPolicy::Packed;

    let mut wall_min = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run_cluster(&cluster, &specs);
        wall_min = wall_min.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    let r = result.expect("at least one rep");
    let name = "cluster_4job_fluid_packed";
    eprintln!(
        "  {:<28} {:>8.1} ms wall, {} events, {:>12.0} events/sec, makespan {:?}",
        name,
        wall_min * 1e3,
        r.fabric_events,
        r.fabric_events as f64 / wall_min,
        r.makespan,
    );
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("wall_sec", Value::F64(wall_min)),
        ("events", Value::U64(r.fabric_events)),
        (
            "events_per_sec",
            Value::F64(r.fabric_events as f64 / wall_min),
        ),
        ("sim_jain_fairness", Value::F64(r.jain_fairness)),
        ("sim_makespan_ns", Value::U64(r.makespan.as_nanos())),
    ])
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn run_macro(s: &MacroScenario, reps: usize) -> Value {
    let mut wall_min = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run(&s.cfg);
        wall_min = wall_min.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    let r = result.expect("at least one rep");
    eprintln!(
        "  {:<28} {:>8.1} ms wall, {} events, {:>12.0} events/sec, peak in-flight {}",
        s.name,
        wall_min * 1e3,
        r.comm_events,
        r.comm_events as f64 / wall_min,
        r.peak_in_flight,
    );
    obj(vec![
        ("name", Value::Str(s.name.to_string())),
        ("wall_sec", Value::F64(wall_min)),
        ("events", Value::U64(r.comm_events)),
        (
            "events_per_sec",
            Value::F64(r.comm_events as f64 / wall_min),
        ),
        ("peak_in_flight", Value::U64(r.peak_in_flight as u64)),
        ("sim_speed", Value::F64(r.speed)),
        ("sim_finished_at_ns", Value::U64(r.finished_at.as_nanos())),
    ])
}

/// Drains a fluid network to idle, stepping event by event.
fn drain_fluid(n: &mut FluidNetwork) {
    loop {
        let t = n.next_event_time();
        if t.is_never() {
            break;
        }
        n.advance(t);
    }
}

/// Sequential-churn micro: one flow at a time, many of them. Before the
/// slot free-list this scaled quadratically (every `reallocate` walked a
/// `frozen` vector sized by every transfer ever issued).
fn micro_fluid_sequential(total: usize) -> (f64, u64) {
    let mut n = FluidNetwork::new(16, NetConfig::gbps(8.0, Transport::ideal()));
    let t0 = Instant::now();
    let mut now = SimTime::ZERO;
    for i in 0..total {
        n.submit(now, NodeId(i % 8), NodeId(8 + (i % 8)), 1_000_000, i as u64);
        drain_fluid(&mut n);
        now = n.next_event_time().min(now + SimTime::from_millis(2));
    }
    (t0.elapsed().as_secs_f64(), total as u64)
}

/// Concurrent-churn micro: rounds of 64 simultaneous flows, drained to
/// idle — `reallocate` under real contention.
fn micro_fluid_concurrent(rounds: usize) -> (f64, u64) {
    let mut n = FluidNetwork::new(16, NetConfig::gbps(8.0, Transport::ideal()));
    let t0 = Instant::now();
    let mut now = SimTime::ZERO;
    let mut submitted = 0u64;
    for round in 0..rounds {
        for f in 0..64usize {
            let src = f % 8;
            let dst = 8 + ((f + round) % 8);
            n.submit(now, NodeId(src), NodeId(dst), 500_000, submitted);
            submitted += 1;
        }
        drain_fluid(&mut n);
        now += SimTime::from_millis(10);
    }
    (t0.elapsed().as_secs_f64(), submitted)
}

/// Poll micro: `next_event_time` on a fluid fabric with 64 active flows.
fn micro_fluid_poll(calls: usize) -> (f64, u64) {
    let mut n = FluidNetwork::new(16, NetConfig::gbps(8.0, Transport::ideal()));
    for f in 0..64usize {
        n.submit(
            SimTime::ZERO,
            NodeId(f % 8),
            NodeId(8 + (f % 8)),
            1_000_000 + f as u64 * 1000,
            f as u64,
        );
    }
    let t0 = Instant::now();
    let mut acc = SimTime::ZERO;
    for _ in 0..calls {
        acc = acc.max(std::hint::black_box(n.next_event_time()));
    }
    std::hint::black_box(acc);
    (t0.elapsed().as_secs_f64(), calls as u64)
}

/// Poll micro: `next_event_time` on the FIFO fabric with 8 on-wire
/// transfers and deep queues.
fn micro_fifo_poll(calls: usize) -> (f64, u64) {
    let mut n = Network::new(16, NetConfig::gbps(8.0, Transport::ideal()));
    for f in 0..64usize {
        n.submit(
            SimTime::ZERO,
            NodeId(f % 8),
            NodeId(8 + (f % 8)),
            1_000_000,
            f as u64,
        );
    }
    let t0 = Instant::now();
    let mut acc = SimTime::ZERO;
    for _ in 0..calls {
        acc = acc.max(std::hint::black_box(n.next_event_time()));
    }
    std::hint::black_box(acc);
    (t0.elapsed().as_secs_f64(), calls as u64)
}

fn micro_entry(name: &str, wall: f64, ops: u64) -> Value {
    eprintln!(
        "  {:<28} {:>8.1} ms wall, {} ops, {:>12.0} ops/sec",
        name,
        wall * 1e3,
        ops,
        ops as f64 / wall
    );
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("wall_sec", Value::F64(wall)),
        ("ops", Value::U64(ops)),
        ("ops_per_sec", Value::F64(ops as f64 / wall)),
    ])
}

/// Per-scenario wall-time ratios old/new, keyed by scenario name.
fn speedups(before: &Value, after: &Value, section: &str, key: &str) -> Value {
    let mut out = Vec::new();
    let (Some(Value::Array(old)), Some(Value::Array(new))) =
        (before.get(section), after.get(section))
    else {
        return Value::Object(out);
    };
    for n in new {
        let Some(Value::Str(name)) = n.get("name") else {
            continue;
        };
        let old_wall = old
            .iter()
            .find(|o| o.get("name") == n.get("name"))
            .and_then(|o| o.get(key));
        if let (Some(Value::F64(ow)), Some(Value::F64(nw))) = (old_wall, n.get(key)) {
            if *nw > 0.0 {
                out.push((name.clone(), Value::F64(ow / nw)));
            }
        }
    }
    Value::Object(out)
}

fn main() {
    let quick = std::env::var("BS_BENCH_QUICK").is_ok();
    let reps: usize = std::env::var("BS_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1 } else { 3 })
        .max(1);
    let out_path = std::env::var("BS_BENCH_OUT").unwrap_or_else(|_| "BENCH_1.json".to_string());

    eprintln!("macro scenarios ({reps} reps, min wall):");
    let mut macros: Vec<Value> = macro_scenarios(quick)
        .iter()
        .map(|s| run_macro(s, reps))
        .collect();
    macros.push(run_cluster_macro(quick, reps));

    eprintln!("micro benches:");
    let scale = if quick { 10 } else { 1 };
    let micros = vec![
        {
            let (w, ops) = micro_fluid_sequential(10_000 / scale);
            micro_entry("fluid_sequential_churn", w, ops)
        },
        {
            let (w, ops) = micro_fluid_concurrent(50 / scale.min(10));
            micro_entry("fluid_concurrent_churn", w, ops)
        },
        {
            let (w, ops) = micro_fluid_poll(200_000 / scale);
            micro_entry("fluid_poll", w, ops)
        },
        {
            let (w, ops) = micro_fifo_poll(200_000 / scale);
            micro_entry("fifo_poll", w, ops)
        },
    ];

    let results = obj(vec![
        ("macro", Value::Array(macros)),
        ("micro", Value::Array(micros)),
    ]);

    let mut doc = vec![
        ("bench", Value::Str("perf_baseline".to_string())),
        ("quick", Value::Bool(quick)),
        ("reps", Value::U64(reps as u64)),
        (
            "units",
            obj(vec![
                (
                    "wall_sec",
                    Value::Str("min wall-clock seconds over reps".to_string()),
                ),
                (
                    "events_per_sec",
                    Value::Str("simulated comm completions per wall second".to_string()),
                ),
                (
                    "ops_per_sec",
                    Value::Str("micro-bench operations per wall second".to_string()),
                ),
            ]),
        ),
        ("results", results.clone()),
    ];

    if let Ok(before_path) = std::env::var("BS_BENCH_BEFORE") {
        // A missing or malformed baseline skips the comparison instead of
        // discarding the measurements we just paid for.
        match std::fs::read_to_string(&before_path)
            .map_err(|e| e.to_string())
            .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
        {
            Ok(before) => {
                let before_results = before
                    .get("results")
                    .cloned()
                    .unwrap_or_else(|| before.clone());
                doc.push((
                    "speedup_wall",
                    obj(vec![
                        (
                            "macro",
                            speedups(&before_results, &results, "macro", "wall_sec"),
                        ),
                        (
                            "micro",
                            speedups(&before_results, &results, "micro", "wall_sec"),
                        ),
                    ]),
                ));
                doc.push(("before", before_results));
            }
            Err(e) => eprintln!("warning: ignoring BS_BENCH_BEFORE={before_path}: {e}"),
        }
    }

    let json = serde_json::to_string_pretty(&obj(doc)).expect("serialise bench output");
    if let Err(e) = std::fs::write(&out_path, json + "\n") {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
