//! CI performance regression gate.
//!
//! Re-times the tracked macro scenarios (full sizes, shared with
//! `bin/perf_baseline` via [`bs_bench::baseline`]) and compares
//! events/sec against the newest committed `BENCH_<n>.json` at the
//! repository root. Any scenario more than the tolerance below its
//! baseline fails the process with exit code 1 and a line naming the
//! scenario, so CI blocks simulator-performance regressions instead of
//! discovering them at the next baseline refresh.
//!
//! ```text
//! cargo run --release -p bs-bench --bin perf_gate
//! ```
//!
//! Environment knobs:
//!
//! - `BS_GATE_BASELINE`  — baseline path (default: the `BENCH_<n>.json`
//!   with the highest `n` in the working directory, falling back to the
//!   repository root this crate was built from).
//! - `BS_GATE_TOLERANCE` — allowed fractional regression (default 0.15,
//!   i.e. fail when events/sec drops more than 15%).
//! - `BS_BENCH_REPS`     — repetitions per scenario, min wall (default 3).
//! - `BS_BENCH_THREADS`  — thread count for the mixed cluster scenarios
//!   (default 1). The fresh run is compared against the committed `_seq`
//!   baselines either way: the parallel core is bit-identical to the
//!   sequential one and must also never fall behind it on throughput by
//!   more than the tolerance, so one floor serves both CI configurations.
//! - `BS_BENCH_SCOPE`    — when set (and not `0`), every timed rep runs
//!   with a subscriber-less scope observation bus attached. The fresh
//!   numbers still gate against the same committed floors, which is the
//!   CI proof that recording costs less than the gate tolerance.
//!
//! Only `_seq` (and single-job) scenarios gate; committed `_par` entries
//! are informational, because parallel wall clock depends on the host's
//! core count and the baseline may come from a different machine.

use std::path::PathBuf;

use bs_bench::baseline::{
    bench_threads, cluster_4job_macro, cluster_mixed_macro, gate_failures, get_f64,
    macro_events_per_sec, macro_scenarios, replay_service_macro, run_cluster_macro, run_macro,
    run_replay_macro, scope_enabled,
};
use serde::Value;

/// The committed baseline with the highest `BENCH_<n>.json` index in
/// `dir`, if any.
fn newest_bench_file(dir: &std::path::Path) -> Option<PathBuf> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(idx) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| idx > *b) {
            best = Some((idx, entry.path()));
        }
    }
    best.map(|(_, p)| p)
}

fn find_baseline() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("BS_GATE_BASELINE") {
        return Some(PathBuf::from(p));
    }
    newest_bench_file(std::path::Path::new(".")).or_else(|| {
        let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        root.pop();
        root.pop();
        newest_bench_file(&root)
    })
}

fn main() {
    let tolerance: f64 = std::env::var("BS_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);
    let reps: usize = std::env::var("BS_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let threads = if std::env::var("BS_BENCH_THREADS").is_ok() {
        bench_threads()
    } else {
        1
    };

    let Some(baseline_path) = find_baseline() else {
        eprintln!("error: no BENCH_<n>.json baseline found and BS_GATE_BASELINE unset");
        std::process::exit(2);
    };
    let baseline_doc: Value = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: reading {}: {e}", baseline_path.display());
            std::process::exit(2);
        }
    };
    let baseline = macro_events_per_sec(&baseline_doc);
    if baseline.is_empty() {
        eprintln!(
            "error: {} has no macro entries with events_per_sec",
            baseline_path.display()
        );
        std::process::exit(2);
    }

    eprintln!(
        "perf gate: {} vs fresh run, {:.0}% tolerance, {reps} rep(s), {threads} thread(s){}:",
        baseline_path.display(),
        tolerance * 100.0,
        if scope_enabled() {
            ", scope bus attached"
        } else {
            ""
        },
    );

    let mut fresh: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, entry: &Value| {
        if let Some(eps) = get_f64(entry, "events_per_sec") {
            fresh.push((name.to_string(), eps));
        }
    };
    for s in macro_scenarios(false) {
        let entry = run_macro(&s, reps);
        record(s.name, &entry);
    }
    {
        let m = cluster_4job_macro(false);
        let entry = run_cluster_macro(&m, reps);
        record(&m.name, &entry);
    }
    for (name, n_ps, n_ar) in [
        ("cluster_8job_mixed_seq", 3usize, 5usize),
        ("cluster_16job_mixed_seq", 6, 10),
    ] {
        // Gated under the `_seq` baseline name even when BS_BENCH_THREADS
        // runs the parallel core — see the module docs.
        let mut m = cluster_mixed_macro(name, n_ps, n_ar, false);
        m.cluster.threads = threads;
        let entry = run_cluster_macro(&m, reps);
        record(&m.name, &entry);
    }
    {
        let m = replay_service_macro(false);
        let entry = run_replay_macro(&m, reps);
        record(&m.name, &entry);
    }

    let failures = gate_failures(&baseline, &fresh, tolerance);
    if failures.is_empty() {
        eprintln!(
            "perf gate passed: {} scenario(s) within tolerance",
            fresh.len()
        );
    } else {
        for f in &failures {
            eprintln!("perf gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}
