//! Shared machinery for the tracked performance runner
//! (`bin/perf_baseline`) and the CI regression gate (`bin/perf_gate`).
//!
//! Both binaries must time the *same* scenarios for their numbers to be
//! comparable, so the scenario definitions, the timing loops, and the
//! gate's comparison rule all live here. The committed `BENCH_<n>.json`
//! files at the repository root are produced by `perf_baseline` from
//! these definitions; `perf_gate` re-times the macro scenarios fresh and
//! compares events/sec against the newest committed baseline.

use std::time::Instant;

use bs_cluster::{run_cluster, run_cluster_observed, ClusterConfig, JobSpec, PlacementPolicy};
use bs_models::{DnnModel, GpuSpec, ModelBuilder, SampleUnit};
use bs_net::{FabricModel, NetConfig, Transport};
use bs_runtime::{run, run_observed, Arch, SchedulerKind, WorldConfig};
use bs_scope::ScopeBus;
use bs_sim::SimTime;
use serde::Value;

/// The comm-heavy toy model used across the runtime tests: a big tensor
/// near the input (VGG-like inversion) so FIFO order hurts and the
/// scheduler has real work to do.
pub fn comm_heavy() -> DnnModel {
    let gpu = GpuSpec::custom(1e12, 2.0);
    ModelBuilder::new("toy", gpu, 8, SampleUnit::Images)
        .explicit(
            "l0",
            40_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l1",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l2",
            5_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .explicit(
            "l3",
            1_000_000,
            SimTime::from_millis(4),
            SimTime::from_millis(8),
        )
        .build()
}

/// A single-job macro scenario.
pub struct MacroScenario {
    pub name: &'static str,
    pub cfg: WorldConfig,
}

/// The tracked single-job macro scenarios.
pub fn macro_scenarios(quick: bool) -> Vec<MacroScenario> {
    let iters = if quick { 5 } else { 20 };
    let net = NetConfig::gbps(10.0, Transport::tcp());
    let bs = SchedulerKind::ByteScheduler {
        partition: 500_000,
        credit: 2_000_000,
    };
    let mk = |arch: Arch, engine, sched, fabric| {
        let mut c = WorldConfig::new(comm_heavy(), 4, arch, net, engine, sched);
        c.iters = iters;
        c.warmup = 2;
        c.jitter = 0.0;
        c.seed = 1;
        c.fabric = fabric;
        c
    };
    vec![
        MacroScenario {
            name: "ps_fifo_bytescheduler",
            cfg: mk(
                Arch::ps(4),
                bs_engine::EngineConfig::mxnet_ps(),
                bs,
                FabricModel::SerialFifo,
            ),
        },
        MacroScenario {
            name: "ps_fluid_bytescheduler",
            cfg: mk(
                Arch::ps(4),
                bs_engine::EngineConfig::mxnet_ps(),
                bs,
                FabricModel::FairShare,
            ),
        },
        MacroScenario {
            name: "allreduce_bytescheduler",
            cfg: mk(
                Arch::allreduce(),
                bs_engine::EngineConfig::mxnet_allreduce(),
                SchedulerKind::ByteScheduler {
                    partition: 2_000_000,
                    credit: 8_000_000,
                },
                FabricModel::SerialFifo,
            ),
        },
    ]
}

/// True when `BS_BENCH_SCOPE` asks the timing loops to attach a
/// (subscriber-less) scope observation bus to every rep, so the perf
/// gate can price the recording overhead against the same committed
/// events/sec floors as the plain runs.
pub fn scope_enabled() -> bool {
    std::env::var("BS_BENCH_SCOPE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Times one single-job macro scenario (`reps` repetitions, min wall)
/// and renders its tracked entry.
pub fn run_macro(s: &MacroScenario, reps: usize) -> Value {
    let run_one = || {
        if scope_enabled() {
            run_observed(&s.cfg, Some(&mut ScopeBus::new()))
        } else {
            run(&s.cfg)
        }
    };
    // One untimed warmup rep: the first simulation in a process pays
    // first-touch page faults and clock ramp-up, which would otherwise
    // poison low-rep runs (the CI gate uses few reps).
    std::hint::black_box(run_one());
    let mut wall_min = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run_one();
        wall_min = wall_min.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    let r = result.expect("at least one rep");
    eprintln!(
        "  {:<28} {:>8.1} ms wall, {} events, {:>12.0} events/sec, peak in-flight {}",
        s.name,
        wall_min * 1e3,
        r.comm_events,
        r.comm_events as f64 / wall_min,
        r.peak_in_flight,
    );
    obj(vec![
        ("name", Value::Str(s.name.to_string())),
        ("wall_sec", Value::F64(wall_min)),
        ("events", Value::U64(r.comm_events)),
        (
            "events_per_sec",
            Value::F64(r.comm_events as f64 / wall_min),
        ),
        ("peak_in_flight", Value::U64(r.peak_in_flight as u64)),
        ("sim_speed", Value::F64(r.speed)),
        ("sim_finished_at_ns", Value::U64(r.finished_at.as_nanos())),
    ])
}

/// One timed cluster scenario: a config, its tenants, and a name for the
/// tracked entry.
pub struct ClusterMacro {
    pub name: String,
    pub cluster: ClusterConfig,
    pub specs: Vec<JobSpec>,
}

/// Cluster-mode macro: 4 comm-heavy jobs packed onto 8 machines of one
/// shared fluid fabric — times the multi-job driver's tag demuxing and
/// per-job advance loop under real contention. Events are total fabric
/// deliveries across all tenants.
pub fn cluster_4job_macro(quick: bool) -> ClusterMacro {
    let iters = if quick { 5 } else { 20 };
    let net = NetConfig::gbps(10.0, Transport::tcp());
    let specs: Vec<JobSpec> = (0..4)
        .map(|j| {
            let mut c = WorldConfig::new(
                comm_heavy(),
                2,
                Arch::ps(2),
                net,
                bs_engine::EngineConfig::mxnet_ps(),
                if j % 2 == 0 {
                    SchedulerKind::ByteScheduler {
                        partition: 500_000,
                        credit: 2_000_000,
                    }
                } else {
                    SchedulerKind::Baseline
                },
            );
            c.iters = iters;
            c.warmup = 2;
            c.jitter = 0.0;
            c.seed = 1 + j as u64;
            JobSpec::train(format!("job{j}"), c)
        })
        .collect();
    let mut cluster = ClusterConfig::new(8, net);
    cluster.fabric = FabricModel::FairShare;
    cluster.placement = PlacementPolicy::Packed;
    ClusterMacro {
        name: "cluster_4job_fluid_packed".to_string(),
        cluster,
        specs,
    }
}

/// Mixed co-tenancy macro for the conservative-parallel driver: `n_ps`
/// 2-worker PS jobs contending on the shared fabric plus `n_ar`
/// all-reduce jobs whose collective streams are private. The AR tenants
/// are permanent free-run candidates, so this is the workload where the
/// parallel core's speedup lives; the PS tenants keep the shared-fabric
/// path honest at the same time.
pub fn cluster_mixed_macro(name: &str, n_ps: usize, n_ar: usize, quick: bool) -> ClusterMacro {
    let iters = if quick { 4 } else { 10 };
    let net = NetConfig::gbps(10.0, Transport::tcp());
    let mut specs: Vec<JobSpec> = Vec::new();
    for j in 0..n_ps {
        let mut c = WorldConfig::new(
            comm_heavy(),
            2,
            Arch::ps(2),
            net,
            bs_engine::EngineConfig::mxnet_ps(),
            if j % 2 == 0 {
                SchedulerKind::ByteScheduler {
                    partition: 500_000,
                    credit: 2_000_000,
                }
            } else {
                SchedulerKind::Baseline
            },
        );
        c.iters = iters;
        c.warmup = 2;
        c.jitter = 0.0;
        c.seed = 1 + j as u64;
        specs.push(JobSpec::train(format!("ps{j}"), c));
    }
    for j in 0..n_ar {
        let mut c = WorldConfig::new(
            comm_heavy(),
            2,
            Arch::allreduce(),
            net,
            bs_engine::EngineConfig::mxnet_allreduce(),
            SchedulerKind::ByteScheduler {
                partition: 2_000_000,
                credit: 8_000_000,
            },
        );
        // AR tenants carry extra iterations: their whole lifetime runs on
        // worker threads in parallel mode, so weighting them up widens
        // the measurable gap between the sequential and parallel cores.
        c.iters = iters * 2;
        c.warmup = 2;
        c.jitter = 0.0;
        c.seed = 100 + j as u64;
        specs.push(JobSpec::train(format!("ar{j}"), c));
    }
    let mut cluster = ClusterConfig::new((2 * n_ps).max(2), net);
    cluster.fabric = FabricModel::FairShare;
    cluster.placement = PlacementPolicy::Packed;
    ClusterMacro {
        name: name.to_string(),
        cluster,
        specs,
    }
}

/// Times a cluster macro (`reps` repetitions, min wall) and renders its
/// tracked entry. Events are total shared-fabric deliveries; simulated
/// outputs (makespan, fairness) are recorded so a perf refactor can show
/// its numbers did not move.
pub fn run_cluster_macro(m: &ClusterMacro, reps: usize) -> Value {
    let run_one = || {
        if scope_enabled() {
            run_cluster_observed(&m.cluster, &m.specs, Some(&mut ScopeBus::new()))
        } else {
            run_cluster(&m.cluster, &m.specs)
        }
    };
    // Untimed warmup rep, as in `run_macro`.
    std::hint::black_box(run_one());
    let mut wall_min = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run_one();
        wall_min = wall_min.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    let r = result.expect("at least one rep");
    eprintln!(
        "  {:<28} {:>8.1} ms wall, {} events, {:>12.0} events/sec, makespan {:?} ({} threads)",
        m.name,
        wall_min * 1e3,
        r.fabric_events,
        r.fabric_events as f64 / wall_min,
        r.makespan,
        m.cluster.threads.max(1),
    );
    obj(vec![
        ("name", Value::Str(m.name.clone())),
        ("threads", Value::U64(m.cluster.threads.max(1) as u64)),
        ("wall_sec", Value::F64(wall_min)),
        ("events", Value::U64(r.fabric_events)),
        (
            "events_per_sec",
            Value::F64(r.fabric_events as f64 / wall_min),
        ),
        ("sim_jain_fairness", Value::F64(r.jain_fairness)),
        ("sim_makespan_ns", Value::U64(r.makespan.as_nanos())),
    ])
}

/// One timed what-if-service scenario: a normalized trace, base replay
/// options, and the query stream driven through a fresh
/// [`bs_replay::ReplayService`].
pub struct ReplayServiceMacro {
    pub name: String,
    pub jobs: Vec<bs_replay::TraceJob>,
    pub base: bs_replay::ReplayOptions,
    pub queries: Vec<bs_replay::WhatIfQuery>,
    pub batch: usize,
}

/// What-if service macro: the committed Philly-style fixture (truncated),
/// a 6-config query mix cycled to 12 queries in batches of 4 — times
/// trace replay on the shared worker pool *and* the service's
/// fingerprint/dedup/LRU path. Events are aggregate shared-fabric
/// deliveries across all answers (cached answers included: the service
/// answered them), so the existing events/sec gate rule applies
/// unchanged.
pub fn replay_service_macro(quick: bool) -> ReplayServiceMacro {
    let text = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/traces/philly_day.json"
    ));
    let jobs = bs_replay::load_trace(text, bs_replay::TraceFormat::PhillyJson)
        .expect("committed fixture loads");
    let base = bs_replay::ReplayOptions {
        iters_cap: 3,
        truncate: Some(if quick { 6 } else { 16 }),
        ..bs_replay::ReplayOptions::default()
    };
    let mut mix: Vec<bs_replay::WhatIfQuery> = Vec::new();
    for b in [10.0, 25.0, 40.0] {
        mix.push(bs_replay::WhatIfQuery {
            bandwidth_gbps: Some(b),
            ..bs_replay::WhatIfQuery::default()
        });
    }
    for p in [PlacementPolicy::Packed, PlacementPolicy::NetworkAware] {
        mix.push(bs_replay::WhatIfQuery {
            placement: Some(p),
            ..bs_replay::WhatIfQuery::default()
        });
    }
    mix.push(bs_replay::WhatIfQuery {
        scheduler: Some(SchedulerKind::Baseline),
        ..bs_replay::WhatIfQuery::default()
    });
    let n_queries = mix.len() * 2; // every config repeats once → cache hits
    let queries = (0..n_queries).map(|i| mix[i % mix.len()].clone()).collect();
    ReplayServiceMacro {
        name: "replay_whatif_service".to_string(),
        jobs,
        base,
        queries,
        batch: 4,
    }
}

/// Times a what-if-service macro (`reps` repetitions, min wall; a fresh
/// service per rep so the LRU starts cold every time) and renders its
/// tracked entry. Events aggregate fabric deliveries over all answers.
pub fn run_replay_macro(m: &ReplayServiceMacro, reps: usize) -> Value {
    let serve = || {
        let mut svc = bs_replay::ReplayService::new(m.jobs.clone(), m.base.clone(), 8);
        let mut events = 0u64;
        for chunk in m.queries.chunks(m.batch) {
            for a in svc.submit_batch(chunk) {
                events += a.report.fabric_events;
            }
        }
        (events, svc.stats())
    };
    // Untimed warmup rep, as in `run_macro`.
    std::hint::black_box(serve());
    let mut wall_min = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = serve();
        wall_min = wall_min.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    let (events, stats) = result.expect("at least one rep");
    let qps = m.queries.len() as f64 / wall_min;
    eprintln!(
        "  {:<28} {:>8.1} ms wall, {} events, {:>12.0} events/sec, {:.1} queries/sec ({} cached, {} deduped)",
        m.name,
        wall_min * 1e3,
        events,
        events as f64 / wall_min,
        qps,
        stats.cache_hits,
        stats.batch_dedup,
    );
    obj(vec![
        ("name", Value::Str(m.name.clone())),
        ("wall_sec", Value::F64(wall_min)),
        ("events", Value::U64(events)),
        ("events_per_sec", Value::F64(events as f64 / wall_min)),
        ("queries", Value::U64(m.queries.len() as u64)),
        ("queries_per_sec", Value::F64(qps)),
        ("cache_hits", Value::U64(stats.cache_hits)),
        ("batch_dedup", Value::U64(stats.batch_dedup)),
        ("executed", Value::U64(stats.executed)),
    ])
}

/// Builds a JSON object from string keys.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Reads a float field from a macro entry.
pub fn get_f64(v: &Value, key: &str) -> Option<f64> {
    match v.get(key) {
        Some(Value::F64(f)) => Some(*f),
        _ => None,
    }
}

/// Appends a field to a JSON object entry.
pub fn push_field(entry: &mut Value, key: &str, value: Value) {
    if let Value::Object(fields) = entry {
        fields.push((key.to_string(), value));
    }
}

/// Per-scenario wall-time ratios old/new, keyed by scenario name.
pub fn speedups(before: &Value, after: &Value, section: &str, key: &str) -> Value {
    let mut out = Vec::new();
    let (Some(Value::Array(old)), Some(Value::Array(new))) =
        (before.get(section), after.get(section))
    else {
        return Value::Object(out);
    };
    for n in new {
        let Some(Value::Str(name)) = n.get("name") else {
            continue;
        };
        let old_wall = old
            .iter()
            .find(|o| o.get("name") == n.get("name"))
            .and_then(|o| o.get(key));
        if let (Some(Value::F64(ow)), Some(Value::F64(nw))) = (old_wall, n.get(key)) {
            if *nw > 0.0 {
                out.push((name.clone(), Value::F64(ow / nw)));
            }
        }
    }
    Value::Object(out)
}

/// The effective thread count for parallel cluster scenarios:
/// `BS_BENCH_THREADS`, or every available core.
pub fn bench_threads() -> usize {
    std::env::var("BS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Extracts `(name, events_per_sec)` for every macro entry of a
/// `BENCH_<n>.json` document (or of its bare `results` section).
pub fn macro_events_per_sec(doc: &Value) -> Vec<(String, f64)> {
    let results = doc.get("results").unwrap_or(doc);
    let Some(Value::Array(entries)) = results.get("macro") else {
        return Vec::new();
    };
    entries
        .iter()
        .filter_map(|e| match (e.get("name"), e.get("events_per_sec")) {
            (Some(Value::Str(n)), Some(Value::F64(eps))) => Some((n.clone(), *eps)),
            _ => None,
        })
        .collect()
}

/// The gate rule: a fresh macro scenario regresses when its events/sec
/// falls more than `tolerance` below the committed baseline's. Scenarios
/// present on only one side are ignored (new scenarios gate from the
/// next baseline on). Returns one human-readable line per regression.
pub fn gate_failures(
    baseline: &[(String, f64)],
    fresh: &[(String, f64)],
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, new_eps) in fresh {
        let Some((_, old_eps)) = baseline.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let floor = old_eps * (1.0 - tolerance);
        if *new_eps < floor {
            failures.push(format!(
                "{name}: {new_eps:.0} events/sec is {:.1}% below the \
                 baseline's {old_eps:.0} (floor {floor:.0} at {:.0}% tolerance)",
                (1.0 - new_eps / old_eps) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(rows: &[(&str, f64)]) -> Vec<(String, f64)> {
        rows.iter().map(|(n, e)| (n.to_string(), *e)).collect()
    }

    /// The gate demonstrably fails against a doctored (inflated)
    /// baseline, and names the offending scenario.
    #[test]
    fn gate_fails_on_doctored_baseline() {
        let doctored = entries(&[("ps_fifo_bytescheduler", 1e12)]);
        let fresh = entries(&[("ps_fifo_bytescheduler", 2_500_000.0)]);
        let failures = gate_failures(&doctored, &fresh, 0.15);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("ps_fifo_bytescheduler"));
    }

    #[test]
    fn gate_passes_within_tolerance_and_ignores_unknown_scenarios() {
        let baseline = entries(&[("a", 1000.0), ("gone", 500.0)]);
        // 14% below baseline: inside the 15% band. "new" has no baseline
        // yet and must not trip the gate.
        let fresh = entries(&[("a", 860.0), ("new", 1.0)]);
        assert!(gate_failures(&baseline, &fresh, 0.15).is_empty());
        // 16% below: outside the band.
        let fresh = entries(&[("a", 840.0)]);
        assert_eq!(gate_failures(&baseline, &fresh, 0.15).len(), 1);
    }

    /// End-to-end through the JSON path: a doctored BENCH document makes
    /// the gate fail.
    #[test]
    fn gate_fails_through_a_doctored_bench_document() {
        let doc = obj(vec![(
            "results",
            obj(vec![(
                "macro",
                Value::Array(vec![obj(vec![
                    ("name", Value::Str("cluster_4job_fluid_packed".into())),
                    ("events_per_sec", Value::F64(9e9)),
                ])]),
            )]),
        )]);
        let baseline = macro_events_per_sec(&doc);
        assert_eq!(baseline.len(), 1);
        let fresh = entries(&[("cluster_4job_fluid_packed", 1_500_000.0)]);
        assert_eq!(gate_failures(&baseline, &fresh, 0.15).len(), 1);
    }
}
