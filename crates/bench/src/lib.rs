//! Performance tooling: shared macro-scenario definitions and timing
//! loops for the tracked runner (`bin/perf_baseline`) and the CI
//! regression gate (`bin/perf_gate`), plus the optional criterion
//! benches under `benches/`.

pub mod baseline;
