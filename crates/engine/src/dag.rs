//! Per-iteration dependency templates: Figures 1, 3, 6, 7 and 8 as data.
//!
//! An [`IterDag`] describes one training iteration's operations and edges.
//! Edges carry an *iteration delta*: `(src, 1)` means "depends on `src`
//! from the previous iteration" (e.g. `fwd_i^{k}` depends on
//! `pull_i^{k-1}`). Instantiating the template per iteration and chaining
//! the deltas yields the unbounded training DAG.

use serde::Serialize;

use crate::config::{CommPattern, EngineConfig, Gating};

/// Which half of the compute pass a node belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum Pass {
    /// Forward propagation.
    Forward,
    /// Backward propagation.
    Backward,
}

/// Roles of nodes that complete through an *external* signal — real
/// communication, or a Dependency Proxy waiting on the Core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum ExternalRole {
    /// Baseline in-graph push of layer `i`'s gradients.
    Push(usize),
    /// Baseline in-graph pull of layer `i`'s parameters.
    Pull(usize),
    /// Baseline in-graph all-reduce of layer `i`'s gradients.
    AllReduce(usize),
    /// Dependency Proxy ahead of layer `i`'s communication: the engine
    /// starting it *is* `CommTask.notify_ready()` (Figure 6).
    ProxyReady(usize),
    /// Dependency Proxy ahead of layer `i`'s forward op: blocks until the
    /// Core delivers `CommTask.notify_finish()` — the layer-wise
    /// out-of-engine dependency (Figure 8). Auto-completes in iteration 0,
    /// where parameters are already in place.
    ProxyFinish(usize),
}

/// Roles of nodes that complete instantly once their dependencies do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum InstantRole {
    /// The asynchronous no-op that replaces in-graph communication when
    /// ByteScheduler crosses a global barrier (§3.4): returns immediately,
    /// letting the barrier pass.
    AsyncLaunch(usize),
    /// The engine's global barrier between iterations (Figure 3).
    Barrier,
}

/// What a template node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum NodeKind {
    /// GPU compute: `fwd_i` or `bwd_i`, serial on the worker's GPU.
    Compute {
        /// Layer index.
        layer: usize,
        /// Forward or backward.
        pass: Pass,
    },
    /// Completes via [`crate::engine::WorkerEngine::complete_external`].
    External(ExternalRole),
    /// Completes the moment its dependencies are satisfied.
    Instant(InstantRole),
}

/// One node of the per-iteration template.
#[derive(Clone, Debug, Serialize)]
pub struct TemplateNode {
    /// The node's kind.
    pub kind: NodeKind,
    /// Dependencies: `(template node index, iteration delta ∈ {0, 1})`.
    /// Delta-1 edges are auto-satisfied in iteration 0.
    pub deps: Vec<(usize, u32)>,
}

/// The per-iteration dependency template for one engine configuration.
#[derive(Clone, Debug, Serialize)]
pub struct IterDag {
    /// Nodes; index order is also the GPU tie-break order.
    pub nodes: Vec<TemplateNode>,
    /// Number of model layers.
    pub num_layers: usize,
    /// The configuration this template encodes.
    pub config: EngineConfig,
}

impl IterDag {
    /// Builds the template for `config` over `num_layers` layers. This is
    /// where the paper's graph surgery happens: baselines get in-graph
    /// comm nodes (and a barrier, if the engine has one); the scheduled
    /// variant gets proxies and out-of-engine communication.
    pub fn build(num_layers: usize, config: EngineConfig) -> IterDag {
        assert!(num_layers > 0, "need at least one layer");
        let n = num_layers;
        let mut nodes: Vec<TemplateNode> = Vec::new();
        fn push(nodes: &mut Vec<TemplateNode>, kind: NodeKind, deps: Vec<(usize, u32)>) -> usize {
            nodes.push(TemplateNode { kind, deps });
            nodes.len() - 1
        }

        // Compute chain. fwd[0] picks up cross-iteration deps below.
        let mut fwd = Vec::with_capacity(n);
        for i in 0..n {
            let deps = if i == 0 {
                vec![]
            } else {
                vec![(fwd[i - 1], 0)]
            };
            fwd.push(push(
                &mut nodes,
                NodeKind::Compute {
                    layer: i,
                    pass: Pass::Forward,
                },
                deps,
            ));
        }
        let mut bwd = vec![usize::MAX; n];
        for i in (0..n).rev() {
            let deps = if i == n - 1 {
                vec![(fwd[n - 1], 0)]
            } else {
                vec![(bwd[i + 1], 0)]
            };
            bwd[i] = push(
                &mut nodes,
                NodeKind::Compute {
                    layer: i,
                    pass: Pass::Backward,
                },
                deps,
            );
        }

        // The serial GPU stream: the next iteration's first forward op
        // follows this iteration's last backward op.
        nodes[fwd[0]].deps.push((bwd[0], 1));

        match config.gating {
            Gating::PerLayer => match config.pattern {
                CommPattern::PushPull => {
                    for i in 0..n {
                        let p = push(
                            &mut nodes,
                            NodeKind::External(ExternalRole::Push(i)),
                            vec![(bwd[i], 0)],
                        );
                        let q = push(
                            &mut nodes,
                            NodeKind::External(ExternalRole::Pull(i)),
                            vec![(p, 0)],
                        );
                        nodes[fwd[i]].deps.push((q, 1));
                    }
                }
                CommPattern::Collective => {
                    for i in 0..n {
                        let a = push(
                            &mut nodes,
                            NodeKind::External(ExternalRole::AllReduce(i)),
                            vec![(bwd[i], 0)],
                        );
                        nodes[fwd[i]].deps.push((a, 1));
                    }
                }
            },
            Gating::GlobalBarrier => {
                let mut comm_done = Vec::with_capacity(n);
                match config.pattern {
                    CommPattern::PushPull => {
                        for (i, &b) in bwd.iter().enumerate() {
                            let p = push(
                                &mut nodes,
                                NodeKind::External(ExternalRole::Push(i)),
                                vec![(b, 0)],
                            );
                            let q = push(
                                &mut nodes,
                                NodeKind::External(ExternalRole::Pull(i)),
                                vec![(p, 0)],
                            );
                            comm_done.push(q);
                        }
                    }
                    CommPattern::Collective => {
                        for (i, &b) in bwd.iter().enumerate() {
                            let a = push(
                                &mut nodes,
                                NodeKind::External(ExternalRole::AllReduce(i)),
                                vec![(b, 0)],
                            );
                            comm_done.push(a);
                        }
                    }
                }
                let barrier = push(
                    &mut nodes,
                    NodeKind::Instant(InstantRole::Barrier),
                    comm_done.iter().map(|&c| (c, 0)).collect(),
                );
                // The barrier gates the whole next iteration; gating the
                // head of the forward chain suffices.
                nodes[fwd[0]].deps.push((barrier, 1));
            }
            Gating::Scheduled { crossed_barrier } => {
                for i in 0..n {
                    // Proxy ahead of the communication: fires notify_ready.
                    push(
                        &mut nodes,
                        NodeKind::External(ExternalRole::ProxyReady(i)),
                        vec![(bwd[i], 0)],
                    );
                    // Proxy ahead of fwd_i: out-of-engine finish dependency.
                    let pf = push(
                        &mut nodes,
                        NodeKind::External(ExternalRole::ProxyFinish(i)),
                        vec![],
                    );
                    nodes[fwd[i]].deps.push((pf, 0));
                }
                if crossed_barrier {
                    // The barrier remains but now waits only on instant
                    // async launches — it passes as soon as BP retires.
                    let launches: Vec<usize> = (0..n)
                        .map(|i| {
                            push(
                                &mut nodes,
                                NodeKind::Instant(InstantRole::AsyncLaunch(i)),
                                vec![(bwd[i], 0)],
                            )
                        })
                        .collect();
                    let barrier = push(
                        &mut nodes,
                        NodeKind::Instant(InstantRole::Barrier),
                        launches.iter().map(|&l| (l, 0)).collect(),
                    );
                    nodes[fwd[0]].deps.push((barrier, 1));
                }
            }
        }

        let dag = IterDag {
            nodes,
            num_layers: n,
            config,
        };
        dag.validate();
        dag
    }

    /// Template index of `fwd_i`.
    pub fn fwd(&self, layer: usize) -> usize {
        layer
    }

    /// Template index of `bwd_i`.
    pub fn bwd(&self, layer: usize) -> usize {
        // Backward nodes were pushed in reverse layer order right after
        // the n forward nodes: bwd[n-1] is at n, bwd[0] at 2n-1.
        self.num_layers + (self.num_layers - 1 - layer)
    }

    /// Number of nodes per iteration.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the template is empty (never: `build` requires ≥ 1 layer).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Internal consistency checks: every delta is 0 or 1, every dep index
    /// in range, compute nodes form the expected chain.
    fn validate(&self) {
        for (idx, node) in self.nodes.iter().enumerate() {
            for &(dep, delta) in &node.deps {
                assert!(dep < self.nodes.len(), "node {idx}: dep {dep} out of range");
                assert!(delta <= 1, "node {idx}: delta {delta} unsupported");
                assert!(
                    dep != idx || delta != 0,
                    "node {idx}: self-dependency within an iteration"
                );
            }
        }
        for i in 0..self.num_layers {
            assert!(matches!(
                self.nodes[self.fwd(i)].kind,
                NodeKind::Compute {
                    layer,
                    pass: Pass::Forward
                } if layer == i
            ));
            assert!(matches!(
                self.nodes[self.bwd(i)].kind,
                NodeKind::Compute {
                    layer,
                    pass: Pass::Backward
                } if layer == i
            ));
        }
    }

    /// All external roles present in the template (for runtime wiring
    /// checks and tests).
    pub fn external_roles(&self) -> Vec<ExternalRole> {
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::External(r) => Some(r),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;

    fn cfg(pattern: CommPattern, gating: Gating) -> EngineConfig {
        EngineConfig {
            kind: EngineKind::Declarative,
            pattern,
            gating,
        }
    }

    #[test]
    fn mxnet_ps_template_matches_figure_1() {
        let d = IterDag::build(3, EngineConfig::mxnet_ps());
        // fwd chain, bwd chain, 3 push, 3 pull.
        assert_eq!(d.len(), 3 + 3 + 3 + 3);
        let roles = d.external_roles();
        assert!(roles.contains(&ExternalRole::Push(0)));
        assert!(roles.contains(&ExternalRole::Pull(2)));
        // fwd_1 depends on fwd_0 (same iter) and pull_1 (previous iter).
        let f1 = &d.nodes[d.fwd(1)];
        assert!(f1.deps.iter().any(|&(dep, delta)| {
            delta == 1 && matches!(d.nodes[dep].kind, NodeKind::External(ExternalRole::Pull(1)))
        }));
    }

    #[test]
    fn barrier_template_matches_figure_3() {
        let d = IterDag::build(3, EngineConfig::tensorflow_ps());
        // The barrier depends on all pulls; fwd_0 depends on it with delta 1.
        let barrier = d
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Instant(InstantRole::Barrier)))
            .expect("barrier present");
        assert_eq!(d.nodes[barrier].deps.len(), 3);
        let f0 = &d.nodes[d.fwd(0)];
        assert!(f0.deps.contains(&(barrier, 1)));
        // And fwd_1 has no per-layer comm dependency.
        let f1 = &d.nodes[d.fwd(1)];
        assert!(f1
            .deps
            .iter()
            .all(|&(dep, _)| matches!(d.nodes[dep].kind, NodeKind::Compute { .. })));
    }

    #[test]
    fn scheduled_template_matches_figures_6_and_8() {
        let d = IterDag::build(3, EngineConfig::mxnet_ps().scheduled());
        let roles = d.external_roles();
        for i in 0..3 {
            assert!(roles.contains(&ExternalRole::ProxyReady(i)));
            assert!(roles.contains(&ExternalRole::ProxyFinish(i)));
        }
        // No in-graph comm nodes remain.
        assert!(!roles.iter().any(|r| matches!(
            r,
            ExternalRole::Push(_) | ExternalRole::Pull(_) | ExternalRole::AllReduce(_)
        )));
        // Every fwd_i is gated by its ProxyFinish within the same iteration.
        for i in 0..3 {
            let f = &d.nodes[d.fwd(i)];
            assert!(f.deps.iter().any(|&(dep, delta)| {
                delta == 0
                    && matches!(
                        d.nodes[dep].kind,
                        NodeKind::External(ExternalRole::ProxyFinish(l)) if l == i
                    )
            }));
        }
        // MXNet had no barrier: none appears.
        assert!(!d
            .nodes
            .iter()
            .any(|n| matches!(n.kind, NodeKind::Instant(InstantRole::Barrier))));
    }

    #[test]
    fn crossed_barrier_keeps_vestigial_barrier_on_async_launches() {
        let d = IterDag::build(2, EngineConfig::tensorflow_ps().scheduled());
        let barrier = d
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Instant(InstantRole::Barrier)))
            .expect("crossed barrier still present");
        // Its deps are instant async launches, not external comm.
        for &(dep, _) in &d.nodes[barrier].deps {
            assert!(matches!(
                d.nodes[dep].kind,
                NodeKind::Instant(InstantRole::AsyncLaunch(_))
            ));
        }
    }

    #[test]
    fn collective_templates_use_allreduce_nodes() {
        let d = IterDag::build(4, cfg(CommPattern::Collective, Gating::PerLayer));
        let roles = d.external_roles();
        assert_eq!(roles.len(), 4);
        assert!(roles
            .iter()
            .all(|r| matches!(r, ExternalRole::AllReduce(_))));
    }

    #[test]
    fn scheduled_collective_template_has_proxies_only() {
        // The all-reduce rewrite: same proxy structure as PS, no
        // in-graph collectives left.
        let d = IterDag::build(3, EngineConfig::mxnet_allreduce().scheduled());
        let roles = d.external_roles();
        assert_eq!(roles.len(), 6, "3 ready + 3 finish proxies");
        assert!(!roles
            .iter()
            .any(|r| matches!(r, ExternalRole::AllReduce(_))));
    }

    #[test]
    fn gpu_stream_edge_links_iterations() {
        let d = IterDag::build(2, EngineConfig::mxnet_ps());
        let f0 = &d.nodes[d.fwd(0)];
        assert!(
            f0.deps.contains(&(d.bwd(0), 1)),
            "fwd_0^k after bwd_0^(k-1)"
        );
    }

    #[test]
    fn fwd_bwd_indexing_is_consistent() {
        let d = IterDag::build(5, EngineConfig::mxnet_ps());
        for i in 0..5 {
            match d.nodes[d.fwd(i)].kind {
                NodeKind::Compute { layer, pass } => {
                    assert_eq!((layer, pass), (i, Pass::Forward))
                }
                _ => panic!("fwd index broken"),
            }
            match d.nodes[d.bwd(i)].kind {
                NodeKind::Compute { layer, pass } => {
                    assert_eq!((layer, pass), (i, Pass::Backward))
                }
                _ => panic!("bwd index broken"),
            }
        }
    }
}
