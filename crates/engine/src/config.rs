//! Engine configuration: which framework flavour is being simulated.

use serde::Serialize;

/// How the engine decides execution order. For the chain-structured DAGs of
/// Theorem 1's assumption 1 (every model in the paper's evaluation), both
/// flavours execute the identical order; the distinction matters for how
/// plugins derive priorities (§3.2) — topological sort for declarative
/// engines, creation-order IDs for imperative ones — and the `priorities`
/// test below pins that both derivations coincide on chains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum EngineKind {
    /// Dependency-graph driven (MXNet, TensorFlow).
    Declarative,
    /// FIFO issue order (PyTorch).
    Imperative,
}

impl EngineKind {
    /// Communication priority of layer `i` out of `n`, as the plugin for
    /// this engine kind derives it (§3.2). Lower = more urgent.
    pub fn priority_of_layer(self, i: usize, n: usize) -> u64 {
        match self {
            // Topological sort of the forward graph: layer index.
            EngineKind::Declarative => i as u64,
            // Monotonic creation ID in BP order (layer n-1 created first),
            // then inverted so lower = closer to the input, same as the
            // declarative derivation for a chain.
            EngineKind::Imperative => {
                let creation_id = (n - 1 - i) as u64;
                (n as u64 - 1) - creation_id
            }
        }
    }
}

/// How gradient exchange appears in the engine's graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum CommPattern {
    /// Parameter server: per-layer push then pull.
    PushPull,
    /// Ring all-reduce: one collective per layer.
    Collective,
}

/// How the next iteration's forward pass is gated on communication.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Gating {
    /// Fine-grained per-layer dependencies (vanilla MXNet): `fwd_i` of
    /// iteration k+1 waits for layer i's own pull / all-reduce.
    PerLayer,
    /// A global barrier between iterations (vanilla TensorFlow, PyTorch):
    /// nothing in iteration k+1 starts until *all* communication of
    /// iteration k finished (Figure 3).
    GlobalBarrier,
    /// ByteScheduler's rewrite: Dependency Proxies expose readiness to the
    /// Core, communication runs out-of-engine, and per-layer finish
    /// proxies gate the next forward pass (Figures 6–8). If the engine had
    /// a barrier it is *crossed*: it now only waits for instant async
    /// launches.
    Scheduled {
        /// Whether the underlying engine had a global barrier that the
        /// rewrite crosses (kept in the graph, vestigially, for fidelity).
        crossed_barrier: bool,
    },
}

/// A fully-specified engine flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct EngineConfig {
    /// Execution style (affects plugin priority derivation).
    pub kind: EngineKind,
    /// Gradient-exchange pattern in the graph.
    pub pattern: CommPattern,
    /// Cross-iteration gating.
    pub gating: Gating,
}

impl EngineConfig {
    /// Vanilla MXNet with a parameter server (declarative, no barrier).
    pub fn mxnet_ps() -> Self {
        EngineConfig {
            kind: EngineKind::Declarative,
            pattern: CommPattern::PushPull,
            gating: Gating::PerLayer,
        }
    }

    /// Vanilla MXNet + Horovod/NCCL all-reduce.
    pub fn mxnet_allreduce() -> Self {
        EngineConfig {
            kind: EngineKind::Declarative,
            pattern: CommPattern::Collective,
            gating: Gating::PerLayer,
        }
    }

    /// Vanilla TensorFlow with a parameter server (global barrier).
    pub fn tensorflow_ps() -> Self {
        EngineConfig {
            kind: EngineKind::Declarative,
            pattern: CommPattern::PushPull,
            gating: Gating::GlobalBarrier,
        }
    }

    /// Vanilla PyTorch + Horovod/NCCL all-reduce (global barrier).
    pub fn pytorch_allreduce() -> Self {
        EngineConfig {
            kind: EngineKind::Imperative,
            pattern: CommPattern::Collective,
            gating: Gating::GlobalBarrier,
        }
    }

    /// Caffe with a parameter server: layer-wise C++ engine, declarative
    /// graph, no inter-iteration barrier — schedulable like MXNet (§7
    /// names Caffe as a future plugin target; the engine semantics are
    /// already covered by this combination).
    pub fn caffe_ps() -> Self {
        EngineConfig {
            kind: EngineKind::Declarative,
            pattern: CommPattern::PushPull,
            gating: Gating::PerLayer,
        }
    }

    /// CNTK with MPI all-reduce: declarative BrainScript graph with a
    /// per-minibatch synchronisation barrier — schedulable like PyTorch's
    /// barrier case (§7).
    pub fn cntk_allreduce() -> Self {
        EngineConfig {
            kind: EngineKind::Declarative,
            pattern: CommPattern::Collective,
            gating: Gating::GlobalBarrier,
        }
    }

    /// The ByteScheduler rewrite of this engine: proxies inserted,
    /// communication moved out of engine, barrier (if any) crossed.
    pub fn scheduled(self) -> Self {
        EngineConfig {
            kind: self.kind,
            pattern: self.pattern,
            gating: Gating::Scheduled {
                crossed_barrier: self.gating == Gating::GlobalBarrier,
            },
        }
    }

    /// True if this configuration runs under ByteScheduler proxies.
    pub fn is_scheduled(&self) -> bool {
        matches!(self.gating, Gating::Scheduled { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_derivations_coincide_on_chains() {
        // §3.2: topological sort (declarative) and creation-ID
        // (imperative) must produce the same priorities for chain models.
        for n in [1usize, 2, 16, 54] {
            for i in 0..n {
                assert_eq!(
                    EngineKind::Declarative.priority_of_layer(i, n),
                    EngineKind::Imperative.priority_of_layer(i, n),
                    "layer {i} of {n}"
                );
            }
        }
    }

    #[test]
    fn lower_layer_has_higher_priority() {
        let p0 = EngineKind::Declarative.priority_of_layer(0, 10);
        let p9 = EngineKind::Declarative.priority_of_layer(9, 10);
        assert!(p0 < p9);
    }

    #[test]
    fn scheduled_rewrite_records_barrier_crossing() {
        assert_eq!(
            EngineConfig::tensorflow_ps().scheduled().gating,
            Gating::Scheduled {
                crossed_barrier: true
            }
        );
        assert_eq!(
            EngineConfig::mxnet_ps().scheduled().gating,
            Gating::Scheduled {
                crossed_barrier: false
            }
        );
        assert!(EngineConfig::mxnet_ps().scheduled().is_scheduled());
        assert!(!EngineConfig::mxnet_ps().is_scheduled());
    }

    #[test]
    fn extra_framework_presets_map_to_known_semantics() {
        // §7: "we believe that we can apply ByteScheduler to them in
        // similar ways" — the similar ways are these combinations.
        assert_eq!(EngineConfig::caffe_ps().gating, Gating::PerLayer);
        assert_eq!(EngineConfig::cntk_allreduce().gating, Gating::GlobalBarrier);
        assert_eq!(
            EngineConfig::cntk_allreduce().pattern,
            CommPattern::Collective
        );
        // Their scheduled rewrites are well-formed too.
        assert!(EngineConfig::caffe_ps().scheduled().is_scheduled());
        assert!(EngineConfig::cntk_allreduce().scheduled().is_scheduled());
    }

    #[test]
    fn presets_match_the_papers_table_of_setups() {
        assert_eq!(EngineConfig::mxnet_ps().gating, Gating::PerLayer);
        assert_eq!(EngineConfig::tensorflow_ps().gating, Gating::GlobalBarrier);
        assert_eq!(
            EngineConfig::pytorch_allreduce().kind,
            EngineKind::Imperative
        );
        assert_eq!(
            EngineConfig::mxnet_allreduce().pattern,
            CommPattern::Collective
        );
    }
}
