//! Framework-engine simulator.
//!
//! The paper's central systems challenge (§3.3–§3.4) is that every ML
//! framework *engine* — the component that decides execution order — is
//! different: MXNet and TensorFlow are declarative (dependency-graph
//! driven), PyTorch is imperative (FIFO), and TensorFlow/PyTorch insert a
//! global barrier between iterations that defeats naive communication
//! scheduling. ByteScheduler's answer is to reshape the engine's dependency
//! structure from the outside, with two devices:
//!
//! * **Dependency Proxy** — an operation posted into the engine that (a)
//!   fires `CommTask.notify_ready()` when the engine starts it, and (b)
//!   refuses to finish until the Core calls `CommTask.start()`, thereby
//!   delaying the communication without breaking engine dependencies
//!   (Figure 6).
//! * **Layer-wise out-of-engine dependencies** — for barrier engines, the
//!   in-graph communication is replaced by an async no-op so the barrier
//!   passes immediately, the real transfer runs outside the engine under
//!   the Core, and a second Proxy in front of each next-iteration forward
//!   op re-imposes the per-layer dependency the engine can no longer see
//!   (Figures 7–8).
//!
//! This crate makes those structures literal: [`dag::IterDag`] builds the
//! per-iteration dependency template for each (communication pattern ×
//! gating) combination — the baseline graphs *and* the ByteScheduler-
//! rewritten graphs — and [`engine::WorkerEngine`] executes the template on
//! a serial GPU, emitting [`engine::EngineEvent`]s where the real system
//! would invoke plugin callbacks.

pub mod config;
pub mod dag;
pub mod engine;

pub use config::{CommPattern, EngineConfig, EngineKind, Gating};
pub use dag::{ExternalRole, InstantRole, IterDag, NodeKind, Pass};
pub use engine::{EngineEvent, WorkerEngine};
