//! The per-worker execution engine: instantiates the [`IterDag`] template
//! iteration by iteration and runs it on a serial GPU.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use bs_models::DnnModel;
use bs_sim::{SimRng, SimTime};
use bs_telemetry::TimeSeries;

use crate::dag::{ExternalRole, IterDag, NodeKind, Pass};

/// Events the engine reports to the runtime. In the real system these are
/// the moments where the framework engine invokes plugin callbacks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineEvent {
    /// An external node's dependencies are satisfied — the engine
    /// "started" the op. For `ProxyReady` this is `notify_ready()`; for
    /// baseline comm nodes it is the tensor landing in the comm stack.
    ExternalReady {
        /// Iteration the node belongs to.
        iter: u64,
        /// Which node.
        role: ExternalRole,
        /// When it happened.
        at: SimTime,
    },
    /// `bwd_0` of an iteration retired: the compute pass is over. The
    /// steady-state interval between these events is the iteration period
    /// the harness measures.
    ComputeIterDone {
        /// The iteration that finished its backward pass.
        iter: u64,
        /// When.
        at: SimTime,
    },
    /// Every node of every iteration retired.
    AllDone {
        /// When.
        at: SimTime,
    },
}

/// Per-iteration bookkeeping.
#[derive(Debug)]
struct IterState {
    /// Unsatisfied dependency count per template node.
    remaining: Vec<u32>,
    /// Completion flags per template node.
    done: Vec<bool>,
    /// Nodes not yet complete.
    incomplete: usize,
}

/// A worker's engine: executes the iteration template on one serial GPU,
/// lazily instantiating iterations (iteration k+1 materialises when
/// `fwd_0^k` retires — by which point no cross-iteration source into k+1
/// can have fired yet, see the `instantiation_is_early_enough` test).
#[derive(Debug)]
pub struct WorkerEngine {
    dag: IterDag,
    /// Reverse adjacency of the template: node → (dependent, delta).
    dependents: Vec<Vec<(usize, u32)>>,
    /// Role → template index for `complete_external`.
    role_index: HashMap<ExternalRole, usize>,
    /// Forward/backward durations per layer.
    fp: Vec<SimTime>,
    bp: Vec<SimTime>,
    /// Number of iterations to run.
    max_iters: u64,
    /// Live iterations.
    iters: BTreeMap<u64, IterState>,
    /// Ready-to-run compute nodes, ordered by (iteration, template index).
    ready_compute: BinaryHeap<Reverse<(u64, usize)>>,
    /// The op currently on the GPU: (start, end time, iteration, node).
    gpu: Option<(SimTime, SimTime, u64, usize)>,
    /// Buffered events awaiting the next public call.
    pending: Vec<EngineEvent>,
    /// Optional multiplicative compute-time jitter: (rng, fraction).
    jitter: Option<(SimRng, f64)>,
    /// Deterministic per-iteration compute-time multipliers
    /// `(from_iter, to_iter, factor)`, each applied to every GPU op of
    /// iterations in `[from, to)` — fault-injected stragglers. Empty when
    /// unfaulted.
    straggle: Vec<(u64, u64, f64)>,
    /// Iterations fully retired.
    done_iters: u64,
    all_done_emitted: bool,
    /// When enabled, completed compute spans: (iter, node, start, end).
    trace: Option<Vec<(u64, usize, SimTime, SimTime)>>,
    /// When enabled, the same spans recorded for causal tracing (xray).
    /// A separate buffer so the chrome-trace path and the xray analyser
    /// can drain independently.
    xray: Option<Vec<(u64, usize, SimTime, SimTime)>>,
    /// When enabled, a 0/1 series of GPU occupancy. Its integral is the
    /// worker's compute-busy time; the complement of the run window is
    /// the communication-stall time the paper's Fig. 1 visualises.
    gpu_busy: Option<TimeSeries>,
}

impl WorkerEngine {
    /// Creates an engine for `model` under the given template, running
    /// `max_iters` iterations. `jitter` adds per-op Gaussian noise of the
    /// given fraction to compute times (real GPUs wobble; the auto-tuner
    /// must cope — §4.3 calls BO noise-resilient).
    pub fn new(
        dag: IterDag,
        model: &DnnModel,
        max_iters: u64,
        jitter: Option<(SimRng, f64)>,
    ) -> Self {
        Self::new_at(dag, model, max_iters, jitter, SimTime::ZERO)
    }

    /// Like [`Self::new`] but with the first GPU op starting at `start`
    /// instead of time zero — a job arriving into a running shared
    /// cluster begins computing at its arrival instant.
    pub fn new_at(
        dag: IterDag,
        model: &DnnModel,
        max_iters: u64,
        jitter: Option<(SimRng, f64)>,
        start: SimTime,
    ) -> Self {
        assert_eq!(
            dag.num_layers,
            model.num_layers(),
            "template and model disagree on layer count"
        );
        assert!(max_iters > 0, "need at least one iteration");
        let mut dependents = vec![Vec::new(); dag.len()];
        for (idx, node) in dag.nodes.iter().enumerate() {
            for &(dep, delta) in &node.deps {
                dependents[dep].push((idx, delta));
            }
        }
        let mut role_index = HashMap::new();
        for (idx, node) in dag.nodes.iter().enumerate() {
            if let NodeKind::External(role) = node.kind {
                let prev = role_index.insert(role, idx);
                assert!(prev.is_none(), "duplicate external role {role:?}");
            }
        }
        let mut engine = WorkerEngine {
            fp: model.layers.iter().map(|l| l.fp_time).collect(),
            bp: model.layers.iter().map(|l| l.bp_time).collect(),
            dependents,
            role_index,
            dag,
            max_iters,
            iters: BTreeMap::new(),
            ready_compute: BinaryHeap::new(),
            gpu: None,
            pending: Vec::new(),
            jitter,
            straggle: Vec::new(),
            done_iters: 0,
            all_done_emitted: false,
            trace: None,
            xray: None,
            gpu_busy: None,
        };
        engine.instantiate(0, start);
        engine.maybe_start_gpu(start);
        engine
    }

    /// The template in use.
    pub fn dag(&self) -> &IterDag {
        &self.dag
    }

    /// Registers a deterministic straggler: every GPU op of iterations in
    /// `[from_iter, to_iter)` runs `factor` × as long. Overlapping ranges
    /// multiply. Intended for setup time; the op already on the GPU is
    /// rescaled in place so a range covering iteration 0 takes effect
    /// from the very first op.
    pub fn add_compute_scale(&mut self, from_iter: u64, to_iter: u64, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "straggler factor must be finite and > 0 (got {factor})"
        );
        self.straggle.push((from_iter, to_iter, factor));
        if let Some((start, end, iter, node)) = self.gpu {
            if iter >= from_iter && iter < to_iter {
                let dur = SimTime::from_secs_f64((end - start).as_secs_f64() * factor);
                self.gpu = Some((start, start + dur, iter, node));
            }
        }
    }

    /// Enables compute-span recording (see [`Self::take_trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Drains recorded compute spans: `(iteration, template node, start,
    /// end)` per retired GPU op.
    pub fn take_trace(&mut self) -> Vec<(u64, usize, SimTime, SimTime)> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Enables compute-span recording for causal tracing (xray); same
    /// tuples as [`Self::take_trace`] but drained independently.
    pub fn enable_xray(&mut self) {
        if self.xray.is_none() {
            self.xray = Some(Vec::new());
        }
    }

    /// Drains recorded xray compute spans: `(iteration, template node,
    /// start, end)` per retired GPU op.
    pub fn take_xray(&mut self) -> Vec<(u64, usize, SimTime, SimTime)> {
        self.xray.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Starts recording the GPU busy/idle series. Recording never changes
    /// engine behaviour.
    pub fn enable_telemetry(&mut self, now: SimTime) {
        if self.gpu_busy.is_none() {
            let mut s = TimeSeries::new();
            s.record(now, if self.gpu.is_some() { 1.0 } else { 0.0 });
            self.gpu_busy = Some(s);
        }
    }

    /// Takes the recorded GPU busy/idle series, or `None` if telemetry
    /// was never enabled.
    pub fn take_gpu_busy(&mut self) -> Option<TimeSeries> {
        self.gpu_busy.take()
    }

    /// Exact GPU-busy seconds accumulated up to `until`, or `None` if
    /// telemetry was never enabled. Reads the same series `take_gpu_busy`
    /// exports, so live consumers (the scope bus) and post-hoc summaries
    /// agree by construction.
    pub fn gpu_busy_secs_until(&self, until: SimTime) -> Option<f64> {
        self.gpu_busy.as_ref().map(|s| s.integral_secs(until))
    }

    /// Iterations fully retired so far.
    pub fn done_iterations(&self) -> u64 {
        self.done_iters
    }

    /// Earliest time the engine has something to do on its own (the end of
    /// the op currently on the GPU), or `MAX` when it is waiting on
    /// external completions.
    pub fn next_event_time(&self) -> SimTime {
        self.gpu.map(|(_, end, _, _)| end).unwrap_or(SimTime::MAX)
    }

    /// Advances to `now`, retiring GPU ops that end at or before it.
    pub fn advance(&mut self, now: SimTime) -> Vec<EngineEvent> {
        self.advance_queued(now);
        std::mem::take(&mut self.pending)
    }

    /// Like [`Self::advance`] but leaves emitted events in the internal
    /// buffer for [`Self::drain_pending`], so a hot event loop can move
    /// them out without surrendering the buffer's allocation.
    pub fn advance_queued(&mut self, now: SimTime) {
        while let Some((start, end, iter, node)) = self.gpu {
            if end > now {
                break;
            }
            self.gpu = None;
            if let Some(trace) = &mut self.trace {
                trace.push((iter, node, start, end));
            }
            if let Some(xray) = &mut self.xray {
                xray.push((iter, node, start, end));
            }
            if let Some(busy) = &mut self.gpu_busy {
                busy.record(end, 0.0);
            }
            self.complete_node(end, iter, node);
            self.maybe_start_gpu(end);
        }
    }

    /// Moves out events emitted by the `*_queued` methods, keeping the
    /// internal buffer's capacity for reuse.
    pub fn drain_pending(&mut self) -> std::vec::Drain<'_, EngineEvent> {
        self.pending.drain(..)
    }

    /// True when emitted events await [`Self::drain_pending`].
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Delivers an external completion signal — the runtime's translation
    /// of a finished transfer, a pull grant chain, or the Core's
    /// `notify_finish` — for `role` of iteration `iter`.
    pub fn complete_external(
        &mut self,
        now: SimTime,
        iter: u64,
        role: ExternalRole,
    ) -> Vec<EngineEvent> {
        self.complete_external_queued(now, iter, role);
        std::mem::take(&mut self.pending)
    }

    /// Like [`Self::complete_external`] but leaves emitted events in the
    /// internal buffer for [`Self::drain_pending`].
    pub fn complete_external_queued(&mut self, now: SimTime, iter: u64, role: ExternalRole) {
        if iter >= self.max_iters {
            // Communication of the final iterations gates nothing.
            return;
        }
        let node = *self
            .role_index
            .get(&role)
            .unwrap_or_else(|| panic!("role {role:?} not in template"));
        let Some(state) = self.iters.get(&iter) else {
            // The iteration already retired in full (possible only for
            // signals that gate nothing, e.g. a duplicate); ignore.
            return;
        };
        assert!(
            !state.done[node],
            "double completion of {role:?} in iteration {iter}"
        );
        assert_eq!(
            state.remaining[node], 0,
            "external {role:?} completed before the engine started it"
        );
        self.complete_node(now, iter, node);
        self.maybe_start_gpu(now);
    }

    /// Materialises iteration `k`.
    fn instantiate(&mut self, k: u64, now: SimTime) {
        debug_assert!(!self.iters.contains_key(&k));
        let n = self.dag.len();
        let mut remaining = vec![0u32; n];
        for (idx, node) in self.dag.nodes.iter().enumerate() {
            for &(dep, delta) in &node.deps {
                let satisfied = match delta {
                    0 => false,
                    _ => {
                        if k == 0 {
                            true
                        } else {
                            self.iters
                                .get(&(k - 1))
                                .map(|s| s.done[dep])
                                .unwrap_or(true) // k-1 fully retired
                        }
                    }
                };
                if !satisfied {
                    remaining[idx] += 1;
                }
            }
        }
        self.iters.insert(
            k,
            IterState {
                remaining,
                done: vec![false; n],
                incomplete: n,
            },
        );
        // Fire everything that is ready at birth.
        for idx in 0..n {
            if self.iters[&k].remaining[idx] == 0 {
                self.on_node_ready(now, k, idx);
            }
        }
    }

    /// A node's dependencies are all satisfied.
    fn on_node_ready(&mut self, now: SimTime, iter: u64, node: usize) {
        match self.dag.nodes[node].kind {
            NodeKind::Compute { .. } => {
                self.ready_compute.push(Reverse((iter, node)));
            }
            NodeKind::Instant(_) => {
                self.complete_node(now, iter, node);
            }
            NodeKind::External(role) => {
                // ProxyFinish auto-completes in iteration 0: the initial
                // parameters are already on the device.
                if iter == 0 && matches!(role, ExternalRole::ProxyFinish(_)) {
                    self.complete_node(now, iter, node);
                    return;
                }
                self.pending.push(EngineEvent::ExternalReady {
                    iter,
                    role,
                    at: now,
                });
                // ProxyReady gates nothing downstream in the engine; the
                // delaying role is played by the Core's credit scheduling.
                // Retire it so iteration completion stays well-defined.
                if matches!(role, ExternalRole::ProxyReady(_)) {
                    self.complete_node(now, iter, node);
                }
            }
        }
    }

    /// Marks a node complete and propagates to dependents.
    fn complete_node(&mut self, now: SimTime, iter: u64, node: usize) {
        // Whether *this* call retired the iteration's last node. Must be
        // captured before propagation: instant nodes complete recursively
        // and only one frame may run the retire logic.
        let retired = {
            let state = self.iters.get_mut(&iter).expect("iteration live");
            debug_assert!(!state.done[node], "double completion");
            state.done[node] = true;
            state.incomplete -= 1;
            state.incomplete == 0
        };

        // Measurement + instantiation hooks.
        if node == self.dag.bwd(0) {
            self.pending
                .push(EngineEvent::ComputeIterDone { iter, at: now });
        }
        if node == self.dag.fwd(0) && iter + 1 < self.max_iters {
            self.instantiate(iter + 1, now);
        }

        // Propagate within this iteration and into the next.
        for di in 0..self.dependents[node].len() {
            let (dep_node, delta) = self.dependents[node][di];
            let target = iter + delta as u64;
            if target >= self.max_iters {
                continue;
            }
            if let Some(state) = self.iters.get_mut(&target) {
                debug_assert!(state.remaining[dep_node] > 0);
                state.remaining[dep_node] -= 1;
                if state.remaining[dep_node] == 0 {
                    self.on_node_ready(now, target, dep_node);
                }
            }
            // Not yet instantiated: instantiation reads `done` flags.
        }

        // Retire and prune fully-complete iterations.
        if retired {
            self.done_iters += 1;
            let next_exists = iter + 1 >= self.max_iters || self.iters.contains_key(&(iter + 1));
            if next_exists {
                self.iters.remove(&iter);
            }
            if self.done_iters == self.max_iters && !self.all_done_emitted {
                self.all_done_emitted = true;
                self.pending.push(EngineEvent::AllDone { at: now });
            }
        }
    }

    /// Puts the best ready compute node on the idle GPU.
    fn maybe_start_gpu(&mut self, now: SimTime) {
        if self.gpu.is_some() {
            return;
        }
        let Some(Reverse((iter, node))) = self.ready_compute.pop() else {
            return;
        };
        let base = match self.dag.nodes[node].kind {
            NodeKind::Compute { layer, pass } => match pass {
                Pass::Forward => self.fp[layer],
                Pass::Backward => self.bp[layer],
            },
            _ => unreachable!("only compute nodes enter the GPU queue"),
        };
        let dur = match &mut self.jitter {
            Some((rng, frac)) => {
                let factor = (1.0 + *frac * rng.normal()).clamp(0.2, 5.0);
                SimTime::from_secs_f64(base.as_secs_f64() * factor)
            }
            None => base,
        };
        let dur = if self.straggle.is_empty() {
            dur
        } else {
            let mut factor = 1.0;
            for &(from, to, f) in &self.straggle {
                if iter >= from && iter < to {
                    factor *= f;
                }
            }
            if factor == 1.0 {
                dur
            } else {
                SimTime::from_secs_f64(dur.as_secs_f64() * factor)
            }
        };
        self.gpu = Some((now, now + dur, iter, node));
        if let Some(busy) = &mut self.gpu_busy {
            busy.record(now, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use bs_models::GpuSpec;
    use bs_models::{ModelBuilder, SampleUnit};

    /// A 3-layer model with 1 ms forward and 2 ms backward per layer.
    fn model3() -> DnnModel {
        let gpu = GpuSpec::custom(1e12, 2.0);
        let mut b = ModelBuilder::new("m3", gpu, 1, SampleUnit::Images);
        for i in 0..3 {
            b = b.explicit(
                format!("l{i}"),
                1_000,
                SimTime::from_millis(1),
                SimTime::from_millis(2),
            );
        }
        b.build()
    }

    /// Drives the engine to quiescence, completing every external signal
    /// instantly (zero-cost communication).
    fn run_with_instant_comm(dag: IterDag, iters: u64) -> Vec<EngineEvent> {
        let model = model3();
        let mut eng = WorkerEngine::new(dag, &model, iters, None);
        let mut events = Vec::new();
        loop {
            let t = eng.next_event_time();
            let batch = if t.is_never() {
                // Only external completions can unblock; handled below by
                // re-processing previous events. If nothing pending, done.
                break;
            } else {
                eng.advance(t)
            };
            let mut queue = batch;
            while let Some(ev) = queue.pop() {
                events.push(ev);
                if let EngineEvent::ExternalReady { iter, role, at } = ev {
                    match role {
                        ExternalRole::ProxyReady(_) => {}
                        ExternalRole::ProxyFinish(_) => {}
                        _ => queue.extend(eng.complete_external(at, iter, role)),
                    }
                }
            }
        }
        events
    }

    #[test]
    fn compute_only_iteration_period_is_fp_plus_bp() {
        let dag = IterDag::build(3, EngineConfig::mxnet_ps());
        let events = run_with_instant_comm(dag, 3);
        let done: Vec<(u64, SimTime)> = events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::ComputeIterDone { iter, at } => Some((*iter, *at)),
                _ => None,
            })
            .collect();
        assert_eq!(done.len(), 3);
        // fp = 3 ms, bp = 6 ms per iteration.
        assert_eq!(done[0], (0, SimTime::from_millis(9)));
        assert_eq!(done[1], (1, SimTime::from_millis(18)));
        assert_eq!(done[2], (2, SimTime::from_millis(27)));
    }

    #[test]
    fn externals_fire_in_backward_order() {
        let dag = IterDag::build(3, EngineConfig::mxnet_ps());
        let model = model3();
        let mut eng = WorkerEngine::new(dag, &model, 1, None);
        let mut pushes = Vec::new();
        loop {
            let t = eng.next_event_time();
            if t.is_never() {
                break;
            }
            for ev in eng.advance(t) {
                if let EngineEvent::ExternalReady {
                    role: ExternalRole::Push(i),
                    ..
                } = ev
                {
                    pushes.push(i);
                }
            }
        }
        // BP retires layer 2 first: FIFO readiness order is 2, 1, 0 — the
        // order Figure 1 shows being sub-optimal.
        assert_eq!(pushes, vec![2, 1, 0]);
    }

    #[test]
    fn per_layer_gating_releases_fwd_layer_by_layer() {
        let dag = IterDag::build(3, EngineConfig::mxnet_ps());
        let model = model3();
        let mut eng = WorkerEngine::new(dag, &model, 2, None);
        // Run iteration 0's compute (pushes fire; we never complete them).
        let mut t;
        loop {
            t = eng.next_event_time();
            if t.is_never() {
                break;
            }
            eng.advance(t);
        }
        // Engine is stalled before fwd_0^1.
        assert_eq!(eng.done_iterations(), 0);
        // Complete layer 0's push + pull only.
        let now = SimTime::from_millis(20);
        eng.complete_external(now, 0, ExternalRole::Push(0));
        let evs = eng.complete_external(now, 0, ExternalRole::Pull(0));
        assert!(evs.is_empty());
        // fwd_0^1 can now run (1 ms) but fwd_1^1 stays blocked on pull_1.
        let end = eng.next_event_time();
        assert_eq!(end, now + SimTime::from_millis(1));
        eng.advance(end);
        assert!(eng.next_event_time().is_never(), "fwd_1 must stay gated");
    }

    #[test]
    fn barrier_gating_blocks_everything_until_all_comm_done() {
        let dag = IterDag::build(3, EngineConfig::tensorflow_ps());
        let model = model3();
        let mut eng = WorkerEngine::new(dag, &model, 2, None);
        loop {
            let t = eng.next_event_time();
            if t.is_never() {
                break;
            }
            eng.advance(t);
        }
        let now = SimTime::from_millis(50);
        // Complete pushes and pulls for layers 0 and 1 — not enough.
        for i in 0..2 {
            eng.complete_external(now, 0, ExternalRole::Push(i));
            eng.complete_external(now, 0, ExternalRole::Pull(i));
        }
        assert!(
            eng.next_event_time().is_never(),
            "barrier must hold with one pull outstanding"
        );
        eng.complete_external(now, 0, ExternalRole::Push(2));
        eng.complete_external(now, 0, ExternalRole::Pull(2));
        assert_eq!(
            eng.next_event_time(),
            now + SimTime::from_millis(1),
            "barrier released: fwd_0^1 starts"
        );
    }

    #[test]
    fn scheduled_engine_gates_fwd_on_proxy_finish() {
        let dag = IterDag::build(3, EngineConfig::mxnet_ps().scheduled());
        let model = model3();
        let mut eng = WorkerEngine::new(dag, &model, 2, None);
        let mut readies = Vec::new();
        loop {
            let t = eng.next_event_time();
            if t.is_never() {
                break;
            }
            for ev in eng.advance(t) {
                if let EngineEvent::ExternalReady {
                    role: ExternalRole::ProxyReady(i),
                    ..
                } = ev
                {
                    readies.push(i);
                }
            }
        }
        assert_eq!(readies, vec![2, 1, 0], "notify_ready follows BP order");
        // Iteration 1 needs ProxyFinish signals (iteration 0's comm).
        let now = SimTime::from_millis(30);
        eng.complete_external(now, 1, ExternalRole::ProxyFinish(0));
        assert_eq!(eng.next_event_time(), now + SimTime::from_millis(1));
        eng.advance(now + SimTime::from_millis(1));
        assert!(eng.next_event_time().is_never(), "fwd_1^1 gated");
        eng.complete_external(
            now + SimTime::from_millis(1),
            1,
            ExternalRole::ProxyFinish(1),
        );
        assert!(!eng.next_event_time().is_never());
    }

    #[test]
    fn crossed_barrier_does_not_stall_bp_to_fp_transition() {
        // TF rewritten by ByteScheduler: the vestigial barrier waits only
        // on instant async launches, so with all ProxyFinish signals in
        // place the next iteration starts immediately after BP.
        let dag = IterDag::build(2, EngineConfig::tensorflow_ps().scheduled());
        let model = {
            let gpu = GpuSpec::custom(1e12, 2.0);
            ModelBuilder::new("m2", gpu, 1, SampleUnit::Images)
                .explicit("a", 100, SimTime::from_millis(1), SimTime::from_millis(1))
                .explicit("b", 100, SimTime::from_millis(1), SimTime::from_millis(1))
                .build()
        };
        let mut eng = WorkerEngine::new(dag, &model, 2, None);
        loop {
            let t = eng.next_event_time();
            if t.is_never() {
                break;
            }
            eng.advance(t);
        }
        // BP of iter 0 retired at 4 ms; grant both finish proxies.
        let now = SimTime::from_millis(4);
        eng.complete_external(now, 1, ExternalRole::ProxyFinish(0));
        eng.complete_external(now, 1, ExternalRole::ProxyFinish(1));
        assert_eq!(eng.next_event_time(), SimTime::from_millis(5));
    }

    #[test]
    fn jitter_preserves_determinism_per_seed() {
        let model = model3();
        let run = |seed: u64| {
            let dag = IterDag::build(3, EngineConfig::mxnet_ps());
            let mut eng = WorkerEngine::new(dag, &model, 2, Some((SimRng::new(seed), 0.05)));
            let mut last = SimTime::ZERO;
            loop {
                let t = eng.next_event_time();
                if t.is_never() {
                    break;
                }
                last = t;
                for ev in eng.advance(t) {
                    if let EngineEvent::ExternalReady { iter, role, at } = ev {
                        if !matches!(
                            role,
                            ExternalRole::ProxyReady(_) | ExternalRole::ProxyFinish(_)
                        ) {
                            eng.complete_external(at, iter, role);
                        }
                    }
                }
            }
            last
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn straggler_scale_slows_only_its_iteration_range() {
        let dag = IterDag::build(3, EngineConfig::mxnet_ps());
        let events = {
            let model = model3();
            let mut eng = WorkerEngine::new(dag, &model, 3, None);
            // Iteration 1 runs 2× slower; 0 and 2 are untouched.
            eng.add_compute_scale(1, 2, 2.0);
            let mut events = Vec::new();
            loop {
                let t = eng.next_event_time();
                if t.is_never() {
                    break;
                }
                let mut queue = eng.advance(t);
                while let Some(ev) = queue.pop() {
                    if let EngineEvent::ExternalReady { iter, role, at } = ev {
                        if !matches!(
                            role,
                            ExternalRole::ProxyReady(_) | ExternalRole::ProxyFinish(_)
                        ) {
                            queue.extend(eng.complete_external(at, iter, role));
                            continue;
                        }
                    }
                    events.push(ev);
                }
            }
            events
        };
        let done: Vec<(u64, SimTime)> = events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::ComputeIterDone { iter, at } => Some((*iter, *at)),
                _ => None,
            })
            .collect();
        // fp+bp = 9 ms per clean iteration; iteration 1 takes 18 ms.
        assert_eq!(done[0], (0, SimTime::from_millis(9)));
        assert_eq!(done[1], (1, SimTime::from_millis(27)));
        assert_eq!(done[2], (2, SimTime::from_millis(36)));
    }

    #[test]
    fn straggler_covering_iteration_zero_rescales_the_op_in_flight() {
        let dag = IterDag::build(3, EngineConfig::mxnet_ps());
        let model = model3();
        let mut eng = WorkerEngine::new(dag, &model, 1, None);
        // fwd_0 (1 ms) is already on the GPU; a 3× straggler must stretch
        // it too.
        eng.add_compute_scale(0, 1, 3.0);
        assert_eq!(eng.next_event_time(), SimTime::from_millis(3));
    }

    #[test]
    fn all_done_fires_once_everything_retires() {
        let dag = IterDag::build(3, EngineConfig::mxnet_ps());
        let events = run_with_instant_comm(dag, 2);
        let all_done = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::AllDone { .. }))
            .count();
        assert_eq!(all_done, 1);
    }

    #[test]
    fn single_layer_model_runs_to_completion() {
        let gpu = GpuSpec::custom(1e12, 2.0);
        let model = ModelBuilder::new("m1", gpu, 1, SampleUnit::Images)
            .explicit("only", 64, SimTime::from_millis(1), SimTime::from_millis(1))
            .build();
        let dag = IterDag::build(1, EngineConfig::mxnet_ps());
        let mut eng = WorkerEngine::new(dag, &model, 2, None);
        let mut done = 0;
        loop {
            let t = eng.next_event_time();
            if t.is_never() {
                break;
            }
            let mut queue = eng.advance(t);
            while let Some(ev) = queue.pop() {
                match ev {
                    EngineEvent::ComputeIterDone { .. } => done += 1,
                    EngineEvent::ExternalReady { iter, role, at } => {
                        queue.extend(eng.complete_external(at, iter, role));
                    }
                    EngineEvent::AllDone { .. } => {}
                }
            }
        }
        assert_eq!(done, 2);
        assert_eq!(eng.done_iterations(), 2);
    }

    #[test]
    fn single_iteration_completes_without_cross_iteration_signals() {
        let dag = IterDag::build(3, EngineConfig::mxnet_ps().scheduled());
        let model = model3();
        let mut eng = WorkerEngine::new(dag, &model, 1, None);
        loop {
            let t = eng.next_event_time();
            if t.is_never() {
                break;
            }
            eng.advance(t);
        }
        // ProxyFinish auto-completes in iteration 0; ProxyReady
        // auto-retires after firing — the single iteration is fully done
        // without any runtime signal.
        assert_eq!(eng.done_iterations(), 1);
    }

    #[test]
    fn late_comm_for_final_iterations_is_ignored_gracefully() {
        let dag = IterDag::build(2, EngineConfig::mxnet_ps().scheduled());
        let model = {
            let gpu = GpuSpec::custom(1e12, 2.0);
            ModelBuilder::new("m2", gpu, 1, SampleUnit::Images)
                .explicit("a", 100, SimTime::from_millis(1), SimTime::from_millis(1))
                .explicit("b", 100, SimTime::from_millis(1), SimTime::from_millis(1))
                .build()
        };
        let mut eng = WorkerEngine::new(dag, &model, 1, None);
        loop {
            let t = eng.next_event_time();
            if t.is_never() {
                break;
            }
            eng.advance(t);
        }
        // The last iteration's communication finishes after training ends;
        // its finish signal targets iteration 1 == max_iters and must be a
        // no-op, not a panic.
        let evs = eng.complete_external(SimTime::from_secs(1), 1, ExternalRole::ProxyFinish(0));
        assert!(evs.is_empty());
        assert_eq!(eng.done_iterations(), 1);
    }

    #[test]
    #[should_panic(expected = "double completion")]
    fn double_external_completion_is_rejected() {
        let dag = IterDag::build(3, EngineConfig::mxnet_ps());
        let model = model3();
        let mut eng = WorkerEngine::new(dag, &model, 2, None);
        loop {
            let t = eng.next_event_time();
            if t.is_never() {
                break;
            }
            eng.advance(t);
        }
        let now = SimTime::from_millis(20);
        eng.complete_external(now, 0, ExternalRole::Push(0));
        eng.complete_external(now, 0, ExternalRole::Push(0));
    }
}
