//! Transport models: TCP vs RDMA, bandwidth configuration.

use bs_sim::SimTime;
use serde::Serialize;

/// A network transport, characterised by its per-message overhead and the
/// fraction of nominal link bandwidth a single stream sustains.
///
/// The paper (§4.1) measures a per-message overhead θ ≈ 300 µs on its TCP
/// testbed. That overhead has two distinct components with different
/// scheduling consequences, so we model them separately:
///
/// * [`wire_overhead`](Transport::wire_overhead) — the part that occupies
///   the wire/NIC exclusively per message (header processing, per-message
///   CPU): back-to-back messages each pay it, so it is what penalises
///   small partitions even under perfect pipelining (Figure 4a).
/// * [`latency`](Transport::latency) — the end-to-end delivery delay
///   (serialisation/RPC/ACK round trip) that *overlaps* with other
///   messages' transmissions. It is exposed only when the sender waits
///   for acknowledgements — precisely why P3's stop-and-wait (credit =
///   one partition) under-utilises the network and why ByteScheduler's
///   credit window exists (§2.3, §4.2).
///
/// `θ = wire_overhead + latency` is the paper's composite overhead, used
/// by the §4.1 delay-bound formulas via [`Transport::total_overhead`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Transport {
    /// Display name ("TCP" / "RDMA").
    pub name: &'static str,
    /// Exclusive per-message wire/NIC occupancy.
    pub wire_overhead: SimTime,
    /// Overlappable per-message delivery latency (ACK/RPC round trip).
    pub latency: SimTime,
    /// Fraction of nominal NIC bandwidth sustained by the message stream.
    pub efficiency: f64,
    /// CPU-side throughput ceiling in bits/sec, independent of the NIC.
    /// Kernel TCP with an RPC layer saturates the host CPUs around
    /// 40 Gbps regardless of NIC speed — the dominant reason the paper's
    /// 100 Gbps TCP baselines sit far below linear scaling while the
    /// RDMA ones do not. `None` = NIC-limited only.
    pub rate_cap_bps: Option<f64>,
}

impl Transport {
    /// Kernel TCP with an RPC layer (ps-lite style): θ ≈ 300 µs total
    /// (the paper's measured value), mostly ACK/RPC latency; ~85 % of
    /// line rate sustained.
    pub fn tcp() -> Self {
        Transport {
            name: "TCP",
            wire_overhead: SimTime::from_micros(35),
            latency: SimTime::from_micros(265),
            efficiency: 0.94,
            rate_cap_bps: Some(42e9),
        }
    }

    /// TCP as NCCL's socket transport drives it: multiple sockets and
    /// helper threads per ring step lift the CPU ceiling well above the
    /// single-RPC-stack figure (ps-lite), at the cost of slightly higher
    /// per-op latency.
    pub fn tcp_nccl() -> Self {
        Transport {
            name: "TCP",
            wire_overhead: SimTime::from_micros(35),
            latency: SimTime::from_micros(265),
            efficiency: 0.94,
            rate_cap_bps: Some(75e9),
        }
    }

    /// RDMA verbs: kernel bypass, θ ≈ 50 µs total, ~97 % of line rate,
    /// no CPU ceiling.
    pub fn rdma() -> Self {
        Transport {
            name: "RDMA",
            wire_overhead: SimTime::from_micros(5),
            latency: SimTime::from_micros(45),
            efficiency: 0.97,
            rate_cap_bps: None,
        }
    }

    /// A custom transport for sensitivity studies.
    pub fn custom(
        name: &'static str,
        wire_overhead: SimTime,
        latency: SimTime,
        efficiency: f64,
    ) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Transport {
            name,
            wire_overhead,
            latency,
            efficiency,
            rate_cap_bps: None,
        }
    }

    /// An idealised transport with zero overhead and perfect efficiency —
    /// the regime of Theorem 1, used by the optimality property tests.
    pub fn ideal() -> Self {
        Transport {
            name: "ideal",
            wire_overhead: SimTime::ZERO,
            latency: SimTime::ZERO,
            efficiency: 1.0,
            rate_cap_bps: None,
        }
    }

    /// The composite per-message overhead θ of the paper's analysis.
    pub fn total_overhead(&self) -> SimTime {
        self.wire_overhead + self.latency
    }
}

/// Full network configuration: nominal per-NIC bandwidth plus transport.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct NetConfig {
    /// Nominal NIC bandwidth in bits/sec (the paper sweeps 1–100 Gbps).
    pub bandwidth_bps: f64,
    /// Transport in use.
    pub transport: Transport,
}

impl NetConfig {
    /// Creates a configuration; bandwidth in Gbps for readability at call
    /// sites (`NetConfig::gbps(100.0, Transport::rdma())`).
    pub fn gbps(gbps: f64, transport: Transport) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        NetConfig {
            bandwidth_bps: gbps * 1e9,
            transport,
        }
    }

    /// Effective payload bandwidth in bytes/sec: NIC rate scaled by the
    /// transport efficiency, clipped at the transport's CPU ceiling.
    pub fn bytes_per_sec(&self) -> f64 {
        let nic = self.bandwidth_bps * self.transport.efficiency;
        let capped = match self.transport.rate_cap_bps {
            Some(cap) => nic.min(cap),
            None => nic,
        };
        capped / 8.0
    }

    /// Wire occupancy of a message of `bytes`: exclusive overhead plus
    /// serialisation time. Both the sender uplink and receiver downlink
    /// are held for this long.
    pub fn occupancy(&self, bytes: u64) -> SimTime {
        self.transport.wire_overhead + SimTime::from_secs_f64(bytes as f64 / self.bytes_per_sec())
    }

    /// End-to-end completion time of a message of `bytes`: occupancy plus
    /// the overlappable delivery latency. This is when the receiver acts
    /// on the message (aggregation, pull grant) and when the sender's
    /// credit returns.
    pub fn xfer_time(&self, bytes: u64) -> SimTime {
        self.occupancy(bytes) + self.transport.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_beats_tcp_on_every_axis() {
        let tcp = Transport::tcp();
        let rdma = Transport::rdma();
        assert!(rdma.wire_overhead < tcp.wire_overhead);
        assert!(rdma.latency < tcp.latency);
        assert!(rdma.efficiency > tcp.efficiency);
    }

    #[test]
    fn paper_thetas_are_preserved() {
        assert_eq!(Transport::tcp().total_overhead(), SimTime::from_micros(300));
        assert_eq!(Transport::rdma().total_overhead(), SimTime::from_micros(50));
    }

    #[test]
    fn xfer_time_is_occupancy_plus_latency() {
        let t = Transport::custom("t", SimTime::from_micros(10), SimTime::from_micros(90), 1.0);
        let cfg = NetConfig::gbps(8.0, t); // 1e9 B/s payload
        assert_eq!(cfg.occupancy(1_000_000), SimTime::from_micros(1_010));
        assert_eq!(cfg.xfer_time(1_000_000), SimTime::from_micros(1_100));
    }

    #[test]
    fn efficiency_scales_bandwidth() {
        let half = NetConfig::gbps(
            10.0,
            Transport::custom("h", SimTime::ZERO, SimTime::ZERO, 0.5),
        );
        let full = NetConfig::gbps(
            10.0,
            Transport::custom("f", SimTime::ZERO, SimTime::ZERO, 1.0),
        );
        assert_eq!(
            half.xfer_time(1_000_000).as_nanos(),
            2 * full.xfer_time(1_000_000).as_nanos()
        );
    }

    #[test]
    fn zero_byte_message_costs_exactly_theta() {
        let cfg = NetConfig::gbps(1.0, Transport::tcp());
        assert_eq!(cfg.xfer_time(0), Transport::tcp().total_overhead());
    }

    #[test]
    fn ideal_transport_is_free_of_overhead() {
        let cfg = NetConfig::gbps(8.0, Transport::ideal());
        assert_eq!(cfg.xfer_time(1_000_000), SimTime::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "efficiency must be in")]
    fn bad_efficiency_rejected() {
        Transport::custom("x", SimTime::ZERO, SimTime::ZERO, 1.5);
    }
}
