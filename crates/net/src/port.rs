//! The fabric interface the runtime's event loops are generic over.
//!
//! Every driver loop (single-job, cluster, and the cluster's parallel
//! free-run phase) talks to the network through [`NetPort`]. The trait
//! exists for two reasons:
//!
//! 1. **Speed** — the drivers monomorphise their hot loops over the
//!    concrete fabric ([`Network`] or [`FluidNetwork`]), so per-event
//!    calls inline instead of dispatching through the [`Fabric`] enum on
//!    every submit and advance.
//! 2. **Replayability** — [`SubmitLog`] implements the same interface by
//!    *recording* submissions instead of simulating them, which is what
//!    lets the parallel cluster driver free-run a job ahead of the shared
//!    fabric and replay its traffic later, bit-identically.
//!
//! [`Fabric`]: crate::fabric::Fabric

use bs_sim::SimTime;

use crate::network::{DroppedTransfer, NetEvent, NodeId, TransferId};
use crate::scope::ScopeWindow;

/// A point-to-point fabric as seen by a driver's event loop: transfer
/// submission, clock queries, event draining, and the link-fault hooks.
///
/// Implementations: [`Network`](crate::network::Network) (FIFO),
/// [`FluidNetwork`](crate::fluid::FluidNetwork) (max-min fair),
/// [`Fabric`](crate::fabric::Fabric) (runtime-selected), and
/// [`SubmitLog`] (records instead of simulating).
pub trait NetPort {
    /// Submits a transfer at `now`.
    fn submit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId;

    /// Earliest instant anything changes, `MAX`/never when idle.
    fn next_event_time(&self) -> SimTime;

    /// True when `advance_into(now)` could change state or emit events.
    fn wants_advance(&self, now: SimTime) -> bool;

    /// Processes everything up to `now`, appending emitted events.
    fn advance_into(&mut self, now: SimTime, out: &mut Vec<NetEvent>);

    /// Rescales one NIC direction's capacity (fault injection).
    fn set_port_scale(&mut self, now: SimTime, node: NodeId, up: bool, scale: f64);

    /// Flaps `node` down, killing in-flight transfers on its ports.
    fn kill_port(&mut self, now: SimTime, node: NodeId) -> Vec<DroppedTransfer>;

    /// Brings `node` back up.
    fn revive_port(&mut self, now: SimTime, node: NodeId);

    /// Cancels every pending transfer whose tag matches `pred` — queued,
    /// on the wire, or awaiting delivery — and returns them. Unlike
    /// [`Self::kill_port`] the ports stay up, so freed wires immediately
    /// serve surviving work. The cluster driver purges a migrating job's
    /// traffic this way.
    fn cancel_where(
        &mut self,
        now: SimTime,
        pred: &mut dyn FnMut(u64) -> bool,
    ) -> Vec<DroppedTransfer>;

    /// Transfers currently occupying wires (diagnostics only).
    fn in_flight(&self) -> usize {
        0
    }

    /// Transfers submitted but not yet on the wire (diagnostics only).
    fn queued(&self) -> usize {
        0
    }

    /// Stalled-transfer rows for `BS_DEBUG_LOOP` (diagnostics only).
    fn debug_stalled(&self) -> Vec<(usize, usize, u64, bool, bool)> {
        Vec::new()
    }

    /// Calls `f` with the tag of every transfer the fabric still owes an
    /// event for (queued, on the wire, or awaiting delivery). Tags may
    /// repeat. The parallel cluster driver uses this to find jobs with no
    /// stake in the shared fabric — the free-run candidates.
    fn for_each_pending_tag(&self, f: &mut dyn FnMut(u64)) {
        let _ = f;
    }

    /// Moves closed scope NIC-utilisation windows into `out`, oldest
    /// first (observation only; no-op unless `enable_scope` was called on
    /// a real fabric — a `SubmitLog` records no windows).
    fn drain_scope_windows(&mut self, _out: &mut Vec<ScopeWindow>) {}
}

/// One recorded [`NetPort::submit`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoggedSubmit {
    /// Sender node (fabric-global).
    pub src: NodeId,
    /// Receiver node (fabric-global).
    pub dst: NodeId,
    /// Payload size.
    pub bytes: u64,
    /// Full (namespaced) transfer tag.
    pub tag: u64,
}

/// A fabric stand-in that records submissions instead of simulating them.
///
/// The parallel cluster driver hands a `SubmitLog` to a job that provably
/// cannot receive fabric events (it has nothing pending on the shared
/// fabric), lets the job run ahead on a worker thread, and later replays
/// the recorded submissions against the real fabric at their original
/// instants and order. Callers are expected to ignore the returned
/// [`TransferId`] — every runtime submission path does — so the log hands
/// out sequence numbers.
///
/// Time never advances through a log (`next_event_time` is never,
/// `wants_advance` is false), and the link-fault hooks panic: cluster
/// tenants may not carry link-fault plans precisely because ports are
/// shared, so a logged run can never legitimately reach them.
#[derive(Clone, Debug, Default)]
pub struct SubmitLog {
    /// Recorded submissions in call order.
    pub submits: Vec<LoggedSubmit>,
}

impl SubmitLog {
    /// An empty log.
    pub fn new() -> SubmitLog {
        SubmitLog::default()
    }

    /// Number of submissions recorded so far.
    pub fn len(&self) -> usize {
        self.submits.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.submits.is_empty()
    }
}

impl NetPort for SubmitLog {
    #[inline]
    fn submit(
        &mut self,
        _now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId {
        let id = TransferId(self.submits.len() as u64);
        self.submits.push(LoggedSubmit {
            src,
            dst,
            bytes,
            tag,
        });
        id
    }

    #[inline]
    fn next_event_time(&self) -> SimTime {
        SimTime::MAX
    }

    #[inline]
    fn wants_advance(&self, _now: SimTime) -> bool {
        false
    }

    fn advance_into(&mut self, _now: SimTime, _out: &mut Vec<NetEvent>) {}

    fn set_port_scale(&mut self, _now: SimTime, _node: NodeId, _up: bool, _scale: f64) {
        panic!("link faults cannot be applied to a SubmitLog (cluster tenants share ports)");
    }

    fn kill_port(&mut self, _now: SimTime, _node: NodeId) -> Vec<DroppedTransfer> {
        panic!("link faults cannot be applied to a SubmitLog (cluster tenants share ports)");
    }

    fn revive_port(&mut self, _now: SimTime, _node: NodeId) {
        panic!("link faults cannot be applied to a SubmitLog (cluster tenants share ports)");
    }

    fn cancel_where(
        &mut self,
        _now: SimTime,
        _pred: &mut dyn FnMut(u64) -> bool,
    ) -> Vec<DroppedTransfer> {
        panic!(
            "transfers cannot be cancelled on a SubmitLog (free-running jobs own no fabric state)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_in_order_and_never_advances() {
        let mut log = SubmitLog::new();
        assert!(log.is_empty());
        let a = log.submit(SimTime::ZERO, NodeId(0), NodeId(1), 10, 7);
        let b = log.submit(SimTime::from_micros(5), NodeId(1), NodeId(0), 20, 8);
        assert_ne!(a, b);
        assert_eq!(log.len(), 2);
        assert_eq!(log.submits[0].tag, 7);
        assert_eq!(log.submits[1].bytes, 20);
        assert!(log.next_event_time().is_never());
        assert!(!log.wants_advance(SimTime::MAX));
        let mut out = Vec::new();
        log.advance_into(SimTime::MAX, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "link faults")]
    fn log_rejects_fault_hooks() {
        SubmitLog::new().kill_port(SimTime::ZERO, NodeId(0));
    }
}
