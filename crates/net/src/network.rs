//! The point-to-point network state machine.

use std::cell::Cell;
use std::collections::{BTreeSet, VecDeque};

use bs_sim::SimTime;
use bs_telemetry::{MetricSet, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::contention::{ContentionLog, ContentionRecorder};
use crate::scope::{ScopeUtil, ScopeWindow};
use crate::transport::NetConfig;

/// A recorded wire occupancy: `(tag, src, dst, start, end)`.
pub type WireSpan = (u64, usize, usize, SimTime, SimTime);

/// A recorded full transfer lifecycle for causal tracing:
/// `(tag, src, dst, submitted, wire_start, released, delivered)`.
pub type WireXrayRecord = (u64, usize, usize, SimTime, SimTime, SimTime, SimTime);

/// Index of a node (worker or parameter-server shard) in the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Handle for a submitted transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TransferId(pub u64);

/// An event reported by [`Network::advance`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetEvent {
    /// The message's wire occupancy ended: ports freed, the sender-side
    /// stack accepted it in full. This is what a ps-lite-style sender
    /// thread observes — P3's stop-and-wait advances on this signal.
    Released(CompletedTransfer),
    /// The message was delivered end-to-end (occupancy + latency): the
    /// receiver can act (aggregate, grant a pull) and the sender's
    /// application-level acknowledgement arrives.
    Delivered(CompletedTransfer),
}

/// A transfer milestone, reported by [`Network::advance`] inside
/// [`NetEvent`]; `finished_at` is the release or delivery instant
/// respectively.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompletedTransfer {
    /// The handle returned by `submit`.
    pub id: TransferId,
    /// Sender node.
    pub src: NodeId,
    /// Receiver node.
    pub dst: NodeId,
    /// Payload size.
    pub bytes: u64,
    /// Caller-defined tag, passed through verbatim.
    pub tag: u64,
    /// Virtual time of the milestone.
    pub finished_at: SimTime,
}

/// A transfer that was killed mid-flight by a port outage
/// ([`Network::kill_port`]): the payload never arrived and the caller
/// must recover it (reclaim credit, retransmit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DroppedTransfer {
    /// Caller-defined tag, passed through verbatim.
    pub tag: u64,
    /// Sender node.
    pub src: NodeId,
    /// Receiver node.
    pub dst: NodeId,
    /// Payload size.
    pub bytes: u64,
}

#[derive(Clone, Debug)]
struct Transfer {
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    tag: u64,
    /// True once the transfer occupies its two ports.
    started: bool,
    /// Wire-occupancy start, for trace recording.
    started_at: SimTime,
    /// Submission instant, for xray recording.
    submitted_at: SimTime,
    /// Scheduled wire-release instant (valid while on the wire); kept so
    /// fault rescaling can find and move the `releases` entry.
    release_at: SimTime,
    /// Scheduled delivery instant (valid while on the wire).
    deliver_at: SimTime,
    /// Effective capacity scale the occupancy was computed at:
    /// `min(up_scale[src], down_scale[dst])`, 1.0 when unfaulted.
    eff: f64,
}

/// Fault-injection state, allocated lazily on the first fault hook call
/// so unfaulted runs take exactly the original code paths.
#[derive(Clone, Debug)]
struct FaultState {
    /// Per-node uplink capacity scale (1.0 = nominal).
    up_scale: Vec<f64>,
    /// Per-node downlink capacity scale.
    down_scale: Vec<f64>,
    /// Nodes currently flapped down: no transfer may start or continue
    /// on either of their ports.
    down: Vec<bool>,
}

/// One node's NIC state.
///
/// The uplink keeps one FIFO queue **per destination** — one ps-lite
/// connection per server — and serves them round-robin: while shard A's
/// downlink is busy with another worker, this worker's messages for
/// shard B proceed. Within a connection, order is strict FIFO (the
/// non-preemptible stack the scheduler schedules around). The downlink
/// serves one message at a time; blocked senders queue FIFO per
/// destination.
#[derive(Clone, Debug, Default)]
struct Nic {
    /// Transfer currently occupying the uplink.
    up_current: Option<TransferId>,
    /// Transfer currently occupying the downlink.
    down_current: Option<TransferId>,
    /// Per-destination FIFO connection queues (index = destination node).
    up_queues: Vec<VecDeque<TransferId>>,
    /// Round-robin cursor over destinations.
    rr_cursor: usize,
    /// Senders whose connection to *this* node is blocked on its busy
    /// downlink, in arrival order.
    down_waiters: VecDeque<NodeId>,
}

/// The network fabric: `n` nodes, each with a duplex NIC at the
/// configured bandwidth; per-connection FIFO with round-robin service at
/// the uplink and head-of-line blocking only *within* a connection.
///
/// A message's life has two phases, matching [`NetConfig`]:
///
/// 1. **Occupancy** — the sender uplink and receiver downlink are held for
///    `wire_overhead + size/bandwidth`; when it ends, both ports free and
///    the next queued messages start (pipelining).
/// 2. **Delivery** — `latency` later the message is *complete*: only now
///    does [`Network::advance`] report it (credits return, aggregation
///    fires). Stop-and-wait senders therefore pay the full round trip per
///    message; windowed senders hide it — the paper's §4.2 trade-off.
#[derive(Clone, Debug)]
pub struct Network {
    cfg: NetConfig,
    nics: Vec<Nic>,
    transfers: Vec<Transfer>,
    /// Wire-occupancy ends, ordered: ports free at these instants.
    releases: BTreeSet<(SimTime, TransferId)>,
    /// Delivery instants, ordered: completions reported at these.
    deliveries: BTreeSet<(SimTime, TransferId)>,
    /// Memoised `min(releases.first, deliveries.first)`; `None` when
    /// stale. Filled lazily so idle polls from the event loop are O(1).
    next_event: Cell<Option<SimTime>>,
    /// Bytes delivered since construction.
    bytes_delivered: u64,
    /// Transfers delivered since construction.
    transfers_delivered: u64,
    /// High-water mark of concurrently started (on-wire) transfers.
    peak_in_flight: usize,
    /// When enabled, completed wire occupancies.
    trace: Option<Vec<WireSpan>>,
    /// When enabled, full transfer lifecycles for causal tracing.
    xray: Option<Vec<WireXrayRecord>>,
    /// Accumulated wire-busy time per uplink, for utilisation accounting.
    up_busy: Vec<SimTime>,
    /// Accumulated wire-busy time per downlink.
    down_busy: Vec<SimTime>,
    /// `Some` only while metrics recording is enabled.
    telem: Option<NetTelemetry>,
    /// `Some` only while the scope bus records NIC-utilisation windows.
    scope: Option<Box<ScopeUtil>>,
    /// `Some` only while link-contention recording is enabled.
    contention: Option<Box<ContentionRecorder>>,
    /// `Some` only once a fault hook has been exercised.
    faults: Option<Box<FaultState>>,
}

/// Metric series for the FIFO fabric; each NIC direction is busy (1) or
/// idle (0), so the per-port utilisation series integrates to exactly the
/// accumulated wire-busy time.
#[derive(Clone, Debug)]
struct NetTelemetry {
    up_util: Vec<TimeSeries>,
    down_util: Vec<TimeSeries>,
    /// Transfers currently occupying wires.
    active: TimeSeries,
    /// Transfers submitted but not yet on the wire.
    queued: TimeSeries,
}

impl NetTelemetry {
    fn new(now: SimTime, num_nodes: usize) -> NetTelemetry {
        let mut zero = TimeSeries::new();
        zero.record(now, 0.0);
        NetTelemetry {
            up_util: vec![zero.clone(); num_nodes],
            down_util: vec![zero.clone(); num_nodes],
            active: zero.clone(),
            queued: zero,
        }
    }
}

impl Network {
    /// Creates a fabric of `num_nodes` NICs.
    pub fn new(num_nodes: usize, cfg: NetConfig) -> Self {
        assert!(num_nodes >= 2, "a network needs at least two nodes");
        let nic = Nic {
            up_queues: vec![VecDeque::new(); num_nodes],
            ..Nic::default()
        };
        Network {
            cfg,
            nics: vec![nic; num_nodes],
            transfers: Vec::new(),
            releases: BTreeSet::new(),
            deliveries: BTreeSet::new(),
            next_event: Cell::new(None),
            bytes_delivered: 0,
            transfers_delivered: 0,
            peak_in_flight: 0,
            trace: None,
            xray: None,
            up_busy: vec![SimTime::ZERO; num_nodes],
            down_busy: vec![SimTime::ZERO; num_nodes],
            telem: None,
            scope: None,
            contention: None,
            faults: None,
        }
    }

    /// Starts recording per-port utilisation and queue-depth series.
    /// Recording never changes fabric behaviour.
    pub fn enable_telemetry(&mut self, now: SimTime) {
        if self.telem.is_none() {
            self.telem = Some(NetTelemetry::new(now, self.nics.len()));
        }
    }

    /// Starts aggregating NIC utilisation into grid-aligned tumbling
    /// windows of `window` for the scope bus, fed from the same record
    /// sites as the telemetry series. Recording never changes fabric
    /// behaviour.
    pub fn enable_scope(&mut self, now: SimTime, window: SimTime) {
        if self.scope.is_none() {
            self.scope = Some(Box::new(ScopeUtil::new(now, 2 * self.nics.len(), window)));
        }
    }

    /// Integrates the scope windows up to `now` and closes the final
    /// partial window (publish by draining afterwards).
    pub fn finish_scope(&mut self, now: SimTime) {
        if let Some(sc) = self.scope.as_mut() {
            sc.finish(now);
        }
    }

    /// Moves closed scope windows into `out`, oldest first.
    pub fn drain_scope_windows(&mut self, out: &mut Vec<ScopeWindow>) {
        if let Some(sc) = self.scope.as_mut() {
            sc.drain_into(out);
        }
    }

    /// Takes the recorded metrics with summaries closed at `now`, or
    /// `None` if telemetry was never enabled.
    pub fn take_metrics(&mut self, now: SimTime) -> Option<MetricSet> {
        let t = self.telem.take()?;
        let mut set = MetricSet::new();
        set.horizon = now;
        set.counter("transfers_delivered", self.transfers_delivered);
        set.counter("bytes_delivered", self.bytes_delivered);
        set.series("active_transfers", t.active);
        set.series("queued_transfers", t.queued);
        for (i, s) in t.up_util.into_iter().enumerate() {
            set.series(format!("nic{i}/up_util"), s);
        }
        for (i, s) in t.down_util.into_iter().enumerate() {
            set.series(format!("nic{i}/down_util"), s);
        }
        Some(set)
    }

    /// Starts recording per-NIC-direction active-job sets and occupancy
    /// spans; `job_of` maps a transfer tag to its job index. Recording
    /// never changes fabric behaviour.
    pub fn enable_contention(&mut self, now: SimTime, job_of: fn(u64) -> usize) {
        if self.contention.is_none() {
            self.contention = Some(Box::new(ContentionRecorder::new(
                now,
                self.nics.len(),
                job_of,
            )));
        }
    }

    /// Drains the contention recording, or `None` if it was never
    /// enabled.
    pub fn take_contention(&mut self) -> Option<ContentionLog> {
        self.contention.as_mut().map(|c| c.take())
    }

    /// Accumulated wire-busy time of every uplink (completed occupancies
    /// only). Divide by the run's makespan for utilisation.
    pub fn uplink_busy(&self) -> &[SimTime] {
        &self.up_busy
    }

    /// Accumulated wire-busy time of every downlink.
    pub fn downlink_busy(&self) -> &[SimTime] {
        &self.down_busy
    }

    /// Enables wire-occupancy span recording (see [`Self::take_trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Drains the recorded spans: `(tag, src, dst, start, end)` per
    /// completed wire occupancy, in release order.
    pub fn take_trace(&mut self) -> Vec<WireSpan> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Enables full-lifecycle transfer recording for causal tracing.
    /// Recording never changes fabric behaviour.
    pub fn enable_xray(&mut self) {
        if self.xray.is_none() {
            self.xray = Some(Vec::new());
        }
    }

    /// Drains the recorded transfer lifecycles, in release order.
    pub fn take_xray(&mut self) -> Vec<WireXrayRecord> {
        self.xray.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nics.len()
    }

    /// End-to-end time for a message of `bytes` on an unloaded wire.
    pub fn xfer_time(&self, bytes: u64) -> SimTime {
        self.cfg.xfer_time(bytes)
    }

    /// Total payload bytes delivered so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Transfers delivered end-to-end so far.
    pub fn transfers_delivered(&self) -> u64 {
        self.transfers_delivered
    }

    /// Highest number of simultaneously on-wire transfers seen so far.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Submits a transfer at time `now`. It joins the `src → dst`
    /// connection queue and starts once it reaches that queue's head, the
    /// uplink picks the connection (round-robin) and `dst`'s downlink is
    /// free. `tag` is returned verbatim on completion events.
    pub fn submit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId {
        assert!(src.0 < self.nics.len(), "src {src:?} out of range");
        assert!(dst.0 < self.nics.len(), "dst {dst:?} out of range");
        assert_ne!(src, dst, "loopback transfers are not modelled");
        let id = TransferId(self.transfers.len() as u64);
        self.transfers.push(Transfer {
            src,
            dst,
            bytes,
            tag,
            started: false,
            started_at: SimTime::ZERO,
            submitted_at: now,
            release_at: SimTime::ZERO,
            deliver_at: SimTime::ZERO,
            eff: 1.0,
        });
        self.nics[src.0].up_queues[dst.0].push_back(id);
        if let Some(t) = self.telem.as_mut() {
            t.queued.step(now, 1.0);
        }
        if let Some(c) = self.contention.as_mut() {
            c.on_submit(now, src.0, dst.0, tag);
        }
        self.try_start(now, src);
        id
    }

    /// Earliest instant at which anything changes (a port frees or a
    /// message delivers), or `SimTime::MAX` if the wire is silent.
    #[inline]
    pub fn next_event_time(&self) -> SimTime {
        if let Some(t) = self.next_event.get() {
            return t;
        }
        let r = self
            .releases
            .first()
            .map(|(t, _)| *t)
            .unwrap_or(SimTime::MAX);
        let d = self
            .deliveries
            .first()
            .map(|(t, _)| *t)
            .unwrap_or(SimTime::MAX);
        let t = r.min(d);
        self.next_event.set(Some(t));
        t
    }

    /// Processes everything up to `now`: frees ports whose occupancy
    /// ended (starting queued successors, reported as
    /// [`NetEvent::Released`]) and reports messages delivered at or
    /// before `now` as [`NetEvent::Delivered`], all in time order.
    pub fn advance(&mut self, now: SimTime) -> Vec<NetEvent> {
        let mut done: Vec<NetEvent> = Vec::new();
        self.advance_into(now, &mut done);
        done
    }

    /// Like [`Self::advance`] but appends events into a caller-provided
    /// buffer, so the event loop can reuse one allocation across ticks.
    pub fn advance_into(&mut self, now: SimTime, done: &mut Vec<NetEvent>) {
        loop {
            let next_release = self.releases.first().copied();
            let next_delivery = self.deliveries.first().copied();
            // Process in time order; at equal instants, releases first so
            // freed ports start successors before completions cascade.
            let take_release = match (next_release, next_delivery) {
                (Some((rt, _)), Some((dt, _))) => rt <= dt,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_release {
                let (t, id) = next_release.expect("present");
                if t > now {
                    break;
                }
                self.releases.pop_first();
                self.next_event.set(None);
                let tr = &self.transfers[id.0 as usize];
                let (src, dst, bytes, tag) = (tr.src, tr.dst, tr.bytes, tr.tag);
                debug_assert_eq!(self.nics[src.0].up_current, Some(id));
                debug_assert_eq!(self.nics[dst.0].down_current, Some(id));
                self.nics[src.0].up_current = None;
                self.nics[dst.0].down_current = None;
                let popped = self.nics[src.0].up_queues[dst.0].pop_front();
                debug_assert_eq!(popped, Some(id));
                let occ = t.saturating_sub(self.transfers[id.0 as usize].started_at);
                self.up_busy[src.0] += occ;
                self.down_busy[dst.0] += occ;
                if let Some(trace) = &mut self.trace {
                    let started_at = self.transfers[id.0 as usize].started_at;
                    trace.push((tag, src.0, dst.0, started_at, t));
                }
                if let Some(xray) = &mut self.xray {
                    let tr = &self.transfers[id.0 as usize];
                    xray.push((
                        tag,
                        src.0,
                        dst.0,
                        tr.submitted_at,
                        tr.started_at,
                        t,
                        t + self.cfg.transport.latency,
                    ));
                }
                if let Some(te) = self.telem.as_mut() {
                    te.active.step(t, -1.0);
                    te.up_util[src.0].record(t, 0.0);
                    te.down_util[dst.0].record(t, 0.0);
                }
                if let Some(sc) = self.scope.as_mut() {
                    sc.record(t, src.0, 0.0);
                    sc.record(t, self.nics.len() + dst.0, 0.0);
                }
                if let Some(c) = self.contention.as_mut() {
                    let started_at = self.transfers[id.0 as usize].started_at;
                    c.on_wire(src.0, dst.0, tag, bytes, started_at, t);
                }
                self.try_start(t, src);
                self.serve_down_waiters(t, dst);
                done.push(NetEvent::Released(CompletedTransfer {
                    id,
                    src,
                    dst,
                    bytes,
                    tag,
                    finished_at: t,
                }));
            } else {
                let (t, id) = next_delivery.expect("present");
                if t > now {
                    break;
                }
                self.deliveries.pop_first();
                self.next_event.set(None);
                let tr = &self.transfers[id.0 as usize];
                self.bytes_delivered += tr.bytes;
                self.transfers_delivered += 1;
                if let Some(c) = self.contention.as_mut() {
                    let (src, dst, tag) = (tr.src.0, tr.dst.0, tr.tag);
                    c.on_delivered(t, src, dst, tag);
                }
                let tr = &self.transfers[id.0 as usize];
                done.push(NetEvent::Delivered(CompletedTransfer {
                    id,
                    src: tr.src,
                    dst: tr.dst,
                    bytes: tr.bytes,
                    tag: tr.tag,
                    finished_at: t,
                }));
            }
        }
    }

    /// Picks the next startable connection head at `src`'s uplink,
    /// scanning destinations round-robin from the cursor; registers
    /// interest in busy downlinks along the way.
    fn try_start(&mut self, now: SimTime, src: NodeId) {
        if self.nics[src.0].up_current.is_some() {
            return;
        }
        if self.port_down(src) {
            return;
        }
        let n = self.nics.len();
        let start = self.nics[src.0].rr_cursor;
        for k in 0..n {
            let dst = (start + k) % n;
            let Some(&head) = self.nics[src.0].up_queues[dst].front() else {
                continue;
            };
            if self.transfers[head.0 as usize].started {
                continue;
            }
            if self.port_down(NodeId(dst)) {
                // Down destination: hold the connection; a revive re-kicks
                // every sender, so no waiter registration is needed.
                continue;
            }
            if self.nics[dst].down_current.is_some() {
                // Blocked connection: register interest exactly once.
                if !self.nics[dst].down_waiters.contains(&src) {
                    self.nics[dst].down_waiters.push_back(src);
                }
                continue;
            }
            self.nics[src.0].rr_cursor = (dst + 1) % n;
            self.start(now, head);
            return;
        }
    }

    /// When `dst`'s downlink frees, offer it to blocked senders in FIFO
    /// arrival order. A registered sender whose uplink is momentarily
    /// busy keeps its place in line (dropping it would let a
    /// phase-locked competitor starve the connection forever); senders
    /// with nothing left for this destination are dropped as stale.
    fn serve_down_waiters(&mut self, now: SimTime, dst: NodeId) {
        if self.port_down(dst) {
            return;
        }
        let mut rotations = self.nics[dst.0].down_waiters.len();
        while self.nics[dst.0].down_current.is_none() && rotations > 0 {
            rotations -= 1;
            let Some(waiter) = self.nics[dst.0].down_waiters.pop_front() else {
                return;
            };
            let head = self.nics[waiter.0].up_queues[dst.0].front().copied();
            match head {
                Some(h) if !self.transfers[h.0 as usize].started => {
                    if self.port_down(waiter) {
                        // Down sender: drop the reservation; a revive
                        // re-kicks every sender.
                        continue;
                    }
                    if self.nics[waiter.0].up_current.is_none() {
                        self.nics[waiter.0].rr_cursor = (dst.0 + 1) % self.nics.len();
                        self.start(now, h);
                    } else {
                        // Sender busy right now: keep the reservation.
                        self.nics[dst.0].down_waiters.push_back(waiter);
                    }
                }
                _ => {
                    // Stale entry (served elsewhere); let the sender look
                    // for other work.
                    self.try_start(now, waiter);
                }
            }
        }
    }

    fn start(&mut self, now: SimTime, id: TransferId) {
        let bytes = self.transfers[id.0 as usize].bytes;
        let (tsrc, tdst) = {
            let t = &self.transfers[id.0 as usize];
            (t.src, t.dst)
        };
        let eff = self.effective_scale(tsrc, tdst);
        let occ = self.cfg.occupancy(bytes);
        // Unfaulted paths keep the exact integer arithmetic; only a
        // degraded link pays the float division.
        let occ = if eff == 1.0 {
            occ
        } else {
            SimTime::from_secs_f64(occ.as_secs_f64() / eff)
        };
        let release = now + occ;
        let deliver = release + self.cfg.transport.latency;
        let t = &mut self.transfers[id.0 as usize];
        t.started = true;
        t.started_at = now;
        t.release_at = release;
        t.deliver_at = deliver;
        t.eff = eff;
        let (src, dst) = (t.src, t.dst);
        debug_assert!(self.nics[src.0].up_current.is_none());
        debug_assert!(self.nics[dst.0].down_current.is_none());
        self.nics[src.0].up_current = Some(id);
        self.nics[dst.0].down_current = Some(id);
        self.releases.insert((release, id));
        self.deliveries.insert((deliver, id));
        self.next_event.set(None);
        self.peak_in_flight = self.peak_in_flight.max(self.releases.len());
        if let Some(t) = self.telem.as_mut() {
            t.queued.step(now, -1.0);
            t.active.step(now, 1.0);
            t.up_util[src.0].record(now, 1.0);
            t.down_util[dst.0].record(now, 1.0);
        }
        if let Some(sc) = self.scope.as_mut() {
            sc.record(now, src.0, 1.0);
            sc.record(now, self.nics.len() + dst.0, 1.0);
        }
    }

    /// True when `node` is currently flapped down.
    fn port_down(&self, node: NodeId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.down[node.0])
    }

    /// Effective capacity scale for a `src → dst` occupancy.
    fn effective_scale(&self, src: NodeId, dst: NodeId) -> f64 {
        match &self.faults {
            None => 1.0,
            Some(f) => f.up_scale[src.0].min(f.down_scale[dst.0]),
        }
    }

    /// Lazily materialises the fault state (all scales 1.0, nothing down).
    fn fault_state(&mut self) -> &mut FaultState {
        let n = self.nics.len();
        self.faults.get_or_insert_with(|| {
            Box::new(FaultState {
                up_scale: vec![1.0; n],
                down_scale: vec![1.0; n],
                down: vec![false; n],
            })
        })
    }

    /// Rescales one NIC direction's capacity to `scale` × nominal at
    /// `now`. The direction's current occupant (if any) keeps its
    /// progress: the remaining occupancy stretches or shrinks by
    /// `old_eff / new_eff`. Use [`Self::kill_port`] for outages — a zero
    /// scale is rejected.
    pub fn set_port_scale(&mut self, now: SimTime, node: NodeId, up: bool, scale: f64) {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be finite and > 0 (got {scale}); use kill_port for outages"
        );
        let fs = self.fault_state();
        let vec = if up {
            &mut fs.up_scale
        } else {
            &mut fs.down_scale
        };
        if vec[node.0] == scale {
            return;
        }
        vec[node.0] = scale;
        // FIFO service: at most one transfer occupies the direction.
        let occupant = if up {
            self.nics[node.0].up_current
        } else {
            self.nics[node.0].down_current
        };
        let Some(id) = occupant else { return };
        let (src, dst, old_eff, release_at, deliver_at) = {
            let t = &self.transfers[id.0 as usize];
            (t.src, t.dst, t.eff, t.release_at, t.deliver_at)
        };
        let new_eff = self.effective_scale(src, dst);
        if new_eff == old_eff {
            return;
        }
        let left = release_at.saturating_sub(now);
        let left = SimTime::from_secs_f64(left.as_secs_f64() * old_eff / new_eff);
        let release = now + left;
        let deliver = release + self.cfg.transport.latency;
        let had_release = self.releases.remove(&(release_at, id));
        let had_delivery = self.deliveries.remove(&(deliver_at, id));
        debug_assert!(had_release && had_delivery, "occupant must be scheduled");
        self.releases.insert((release, id));
        self.deliveries.insert((deliver, id));
        let t = &mut self.transfers[id.0 as usize];
        t.release_at = release;
        t.deliver_at = deliver;
        t.eff = new_eff;
        self.next_event.set(None);
    }

    /// Flaps `node` down at `now`: both its NIC directions stop carrying
    /// traffic, and the transfers currently occupying them are killed —
    /// removed from the wire without delivering. Returns the killed
    /// transfers so the caller can recover them (reclaim credit,
    /// retransmit). Transfers already past wire release (in the latency
    /// phase) still deliver: the receiver's stack accepted them.
    /// Queued transfers stay queued until [`Self::revive_port`].
    pub fn kill_port(&mut self, now: SimTime, node: NodeId) -> Vec<DroppedTransfer> {
        self.fault_state().down[node.0] = true;
        let victims: Vec<TransferId> =
            [self.nics[node.0].up_current, self.nics[node.0].down_current]
                .into_iter()
                .flatten()
                .collect();
        let mut dropped = Vec::with_capacity(victims.len());
        for id in victims {
            let (src, dst, bytes, tag, started_at, release_at, deliver_at) = {
                let t = &self.transfers[id.0 as usize];
                (
                    t.src,
                    t.dst,
                    t.bytes,
                    t.tag,
                    t.started_at,
                    t.release_at,
                    t.deliver_at,
                )
            };
            let had_release = self.releases.remove(&(release_at, id));
            let had_delivery = self.deliveries.remove(&(deliver_at, id));
            debug_assert!(
                had_release && had_delivery,
                "on-wire victim must be scheduled"
            );
            self.nics[src.0].up_current = None;
            self.nics[dst.0].down_current = None;
            let popped = self.nics[src.0].up_queues[dst.0].pop_front();
            debug_assert_eq!(popped, Some(id));
            // The aborted occupancy still held the wire until now.
            let occ = now.saturating_sub(started_at);
            self.up_busy[src.0] += occ;
            self.down_busy[dst.0] += occ;
            if let Some(trace) = &mut self.trace {
                trace.push((tag, src.0, dst.0, started_at, now));
            }
            if let Some(xray) = &mut self.xray {
                // A killed transfer releases and "delivers" (dies) at now;
                // the retransmit shows up as a separate record.
                xray.push((
                    tag,
                    src.0,
                    dst.0,
                    self.transfers[id.0 as usize].submitted_at,
                    started_at,
                    now,
                    now,
                ));
            }
            if let Some(te) = self.telem.as_mut() {
                te.active.step(now, -1.0);
                te.up_util[src.0].record(now, 0.0);
                te.down_util[dst.0].record(now, 0.0);
            }
            if let Some(sc) = self.scope.as_mut() {
                sc.record(now, src.0, 0.0);
                sc.record(now, self.nics.len() + dst.0, 0.0);
            }
            if let Some(c) = self.contention.as_mut() {
                c.on_wire(src.0, dst.0, tag, bytes, started_at, now);
                c.on_dropped(now, src.0, dst.0, tag);
            }
            dropped.push(DroppedTransfer {
                tag,
                src,
                dst,
                bytes,
            });
            // The surviving side's port freed: let it take other work
            // (guards skip the down node).
            self.try_start(now, src);
            self.serve_down_waiters(now, dst);
        }
        self.next_event.set(None);
        dropped
    }

    /// Cancels every pending transfer whose tag matches `pred` at `now`
    /// — queued, on the wire, or in the latency phase awaiting delivery —
    /// and returns them. Unlike [`Self::kill_port`] no port goes down:
    /// wires freed by a cancelled occupant immediately start surviving
    /// work. The cluster driver purges a checkpointing job's traffic this
    /// way before migrating it.
    pub fn cancel_where(
        &mut self,
        now: SimTime,
        pred: &mut dyn FnMut(u64) -> bool,
    ) -> Vec<DroppedTransfer> {
        let mut dropped = Vec::new();
        // Queued-but-unstarted transfers first, so the wires freed below
        // cannot restart a transfer that is itself being cancelled.
        for src in 0..self.nics.len() {
            for dst in 0..self.nics.len() {
                let mut q = std::mem::take(&mut self.nics[src].up_queues[dst]);
                q.retain(|id| {
                    let t = &self.transfers[id.0 as usize];
                    if t.started || !pred(t.tag) {
                        return true;
                    }
                    if let Some(te) = self.telem.as_mut() {
                        te.queued.step(now, -1.0);
                    }
                    if let Some(c) = self.contention.as_mut() {
                        c.on_dropped(now, t.src.0, t.dst.0, t.tag);
                    }
                    dropped.push(DroppedTransfer {
                        tag: t.tag,
                        src: t.src,
                        dst: t.dst,
                        bytes: t.bytes,
                    });
                    false
                });
                self.nics[src].up_queues[dst] = q;
            }
        }
        // On-wire occupants: every started transfer is some NIC's
        // up_current, so scanning uplinks visits each exactly once.
        let victims: Vec<TransferId> = self
            .nics
            .iter()
            .filter_map(|n| n.up_current)
            .filter(|id| pred(self.transfers[id.0 as usize].tag))
            .collect();
        for id in victims {
            let (src, dst, bytes, tag, started_at, release_at, deliver_at) = {
                let t = &self.transfers[id.0 as usize];
                (
                    t.src,
                    t.dst,
                    t.bytes,
                    t.tag,
                    t.started_at,
                    t.release_at,
                    t.deliver_at,
                )
            };
            let had_release = self.releases.remove(&(release_at, id));
            let had_delivery = self.deliveries.remove(&(deliver_at, id));
            debug_assert!(
                had_release && had_delivery,
                "on-wire victim must be scheduled"
            );
            self.nics[src.0].up_current = None;
            self.nics[dst.0].down_current = None;
            let popped = self.nics[src.0].up_queues[dst.0].pop_front();
            debug_assert_eq!(popped, Some(id));
            let occ = now.saturating_sub(started_at);
            self.up_busy[src.0] += occ;
            self.down_busy[dst.0] += occ;
            if let Some(trace) = &mut self.trace {
                trace.push((tag, src.0, dst.0, started_at, now));
            }
            if let Some(xray) = &mut self.xray {
                xray.push((
                    tag,
                    src.0,
                    dst.0,
                    self.transfers[id.0 as usize].submitted_at,
                    started_at,
                    now,
                    now,
                ));
            }
            if let Some(te) = self.telem.as_mut() {
                te.active.step(now, -1.0);
                te.up_util[src.0].record(now, 0.0);
                te.down_util[dst.0].record(now, 0.0);
            }
            if let Some(sc) = self.scope.as_mut() {
                sc.record(now, src.0, 0.0);
                sc.record(now, self.nics.len() + dst.0, 0.0);
            }
            if let Some(c) = self.contention.as_mut() {
                c.on_wire(src.0, dst.0, tag, bytes, started_at, now);
                c.on_dropped(now, src.0, dst.0, tag);
            }
            dropped.push(DroppedTransfer {
                tag,
                src,
                dst,
                bytes,
            });
            self.try_start(now, src);
            self.serve_down_waiters(now, dst);
        }
        // Latency-phase transfers (past wire release): their deliveries
        // simply never fire.
        let purge: Vec<(SimTime, TransferId)> = self
            .deliveries
            .iter()
            .filter(|(_, id)| pred(self.transfers[id.0 as usize].tag))
            .copied()
            .collect();
        for (t, id) in purge {
            self.deliveries.remove(&(t, id));
            let tr = &self.transfers[id.0 as usize];
            if let Some(c) = self.contention.as_mut() {
                c.on_dropped(now, tr.src.0, tr.dst.0, tr.tag);
            }
            dropped.push(DroppedTransfer {
                tag: tr.tag,
                src: tr.src,
                dst: tr.dst,
                bytes: tr.bytes,
            });
        }
        self.next_event.set(None);
        dropped
    }

    /// Brings `node` back up at `now` and restarts service on every
    /// connection the outage was blocking. Capacity scales set before or
    /// during the outage persist.
    pub fn revive_port(&mut self, now: SimTime, node: NodeId) {
        self.fault_state().down[node.0] = false;
        for s in 0..self.nics.len() {
            self.try_start(now, NodeId(s));
        }
        self.next_event.set(None);
    }

    /// Number of transfers currently occupying wires.
    pub fn in_flight(&self) -> usize {
        self.nics.iter().filter(|n| n.up_current.is_some()).count()
    }

    /// Number of transfers queued (submitted but not yet on the wire),
    /// across all senders.
    pub fn queued(&self) -> usize {
        self.nics
            .iter()
            .flat_map(|n| n.up_queues.iter())
            .flatten()
            .filter(|id| !self.transfers[id.0 as usize].started)
            .count()
    }

    /// Debug helper: (src, dst, tag) of every submitted-but-unstarted
    /// transfer, plus whether src's uplink and dst's downlink are busy.
    pub fn debug_stalled(&self) -> Vec<(usize, usize, u64, bool, bool)> {
        let mut out = Vec::new();
        for (src, nic) in self.nics.iter().enumerate() {
            for (dst, q) in nic.up_queues.iter().enumerate() {
                for id in q {
                    let t = &self.transfers[id.0 as usize];
                    if !t.started {
                        out.push((
                            src,
                            dst,
                            t.tag,
                            self.nics[src].up_current.is_some(),
                            self.nics[dst].down_current.is_some(),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Debug helper: (src, dst, tag) of transfers currently holding ports,
    /// plus the sizes of the release/delivery sets.
    pub fn debug_in_flight(&self) -> (Vec<(usize, usize, u64)>, usize, usize) {
        let mut cur = Vec::new();
        for nic in &self.nics {
            if let Some(id) = nic.up_current {
                let t = &self.transfers[id.0 as usize];
                cur.push((t.src.0, t.dst.0, t.tag));
            }
        }
        (cur, self.releases.len(), self.deliveries.len())
    }

    /// True when nothing is queued, in flight, or awaiting delivery.
    pub fn is_idle(&self) -> bool {
        self.in_flight() == 0 && self.queued() == 0 && self.deliveries.is_empty()
    }

    /// Calls `f` with the tag of every pending transfer — queued, on the
    /// wire, or awaiting delivery. Tags may repeat (an on-wire transfer
    /// sits in both its connection queue and the delivery set); callers
    /// fold the stream into a set or bitmask.
    pub fn for_each_pending_tag(&self, f: &mut dyn FnMut(u64)) {
        for nic in &self.nics {
            for q in &nic.up_queues {
                for id in q {
                    f(self.transfers[id.0 as usize].tag);
                }
            }
        }
        for (_, id) in &self.deliveries {
            f(self.transfers[id.0 as usize].tag);
        }
    }
}

impl crate::port::NetPort for Network {
    #[inline]
    fn submit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId {
        Network::submit(self, now, src, dst, bytes, tag)
    }

    #[inline]
    fn next_event_time(&self) -> SimTime {
        Network::next_event_time(self)
    }

    #[inline]
    fn wants_advance(&self, now: SimTime) -> bool {
        Network::next_event_time(self) <= now
    }

    #[inline]
    fn advance_into(&mut self, now: SimTime, out: &mut Vec<NetEvent>) {
        Network::advance_into(self, now, out)
    }

    fn set_port_scale(&mut self, now: SimTime, node: NodeId, up: bool, scale: f64) {
        Network::set_port_scale(self, now, node, up, scale)
    }

    fn kill_port(&mut self, now: SimTime, node: NodeId) -> Vec<DroppedTransfer> {
        Network::kill_port(self, now, node)
    }

    fn revive_port(&mut self, now: SimTime, node: NodeId) {
        Network::revive_port(self, now, node)
    }

    fn cancel_where(
        &mut self,
        now: SimTime,
        pred: &mut dyn FnMut(u64) -> bool,
    ) -> Vec<DroppedTransfer> {
        Network::cancel_where(self, now, pred)
    }

    fn for_each_pending_tag(&self, f: &mut dyn FnMut(u64)) {
        Network::for_each_pending_tag(self, f)
    }

    fn in_flight(&self) -> usize {
        Network::in_flight(self)
    }

    fn queued(&self) -> usize {
        Network::queued(self)
    }

    fn debug_stalled(&self) -> Vec<(usize, usize, u64, bool, bool)> {
        Network::debug_stalled(self)
    }

    fn drain_scope_windows(&mut self, out: &mut Vec<ScopeWindow>) {
        Network::drain_scope_windows(self, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;

    /// 8 Gbps, perfect efficiency (1e9 B/s), 100 µs wire overhead, no
    /// latency: easy arithmetic for occupancy-oriented tests.
    fn net(n: usize) -> Network {
        let cfg = NetConfig::gbps(
            8.0,
            Transport::custom("t", SimTime::from_micros(100), SimTime::ZERO, 1.0),
        );
        Network::new(n, cfg)
    }

    /// Same wire but with 400 µs overlappable latency.
    fn net_lat(n: usize) -> Network {
        let cfg = NetConfig::gbps(
            8.0,
            Transport::custom(
                "t",
                SimTime::from_micros(100),
                SimTime::from_micros(400),
                1.0,
            ),
        );
        Network::new(n, cfg)
    }

    fn mb(x: u64) -> u64 {
        x * 1_000_000
    }

    fn drain(n: &mut Network) -> Vec<(u64, SimTime)> {
        let mut out = Vec::new();
        loop {
            let t = n.next_event_time();
            if t.is_never() {
                break;
            }
            out.extend(n.advance(t).into_iter().filter_map(|e| match e {
                NetEvent::Delivered(c) => Some((c.tag, c.finished_at)),
                NetEvent::Released(_) => None,
            }));
        }
        out
    }

    #[test]
    fn single_transfer_takes_overhead_plus_serialisation() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 7);
        assert_eq!(n.next_event_time(), SimTime::from_micros(1_100));
        let done = n.advance(SimTime::from_micros(1_100));
        // One release + one delivery (zero latency: same instant).
        assert_eq!(done.len(), 2);
        assert!(matches!(done[0], NetEvent::Released(c) if c.tag == 7));
        assert!(matches!(done[1], NetEvent::Delivered(c) if c.tag == 7));
        assert!(n.is_idle());
    }

    #[test]
    fn latency_delays_delivery_but_not_the_next_start() {
        let mut n = net_lat(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 2);
        let done = drain(&mut n);
        // Deliveries at 1.5 ms and 2.6 ms: the second message started at
        // 1.1 ms (port release), not at 1.5 ms (delivery) — pipelined.
        assert_eq!(
            done,
            vec![
                (1, SimTime::from_micros(1_500)),
                (2, SimTime::from_micros(2_600)),
            ]
        );
    }

    #[test]
    fn connection_queue_is_fifo() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 2);
        let done = drain(&mut n);
        assert_eq!(done[0].0, 1);
        assert_eq!(done[1], (2, SimTime::from_micros(2_200)));
    }

    #[test]
    fn uplink_round_robins_across_connections() {
        let mut n = net(4);
        // Two messages per destination; service should interleave
        // 1,2,3,1,2,3 rather than draining one connection first.
        for round in 0..2u64 {
            for d in 1..4u64 {
                n.submit(
                    SimTime::ZERO,
                    NodeId(0),
                    NodeId(d as usize),
                    mb(1),
                    d * 10 + round,
                );
            }
        }
        let order: Vec<u64> = drain(&mut n).into_iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30, 11, 21, 31]);
    }

    #[test]
    fn incast_serialises_on_receiver_downlink_in_fifo_order() {
        let mut n = net(4);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(3), mb(1), 10);
        n.submit(SimTime::ZERO, NodeId(1), NodeId(3), mb(1), 11);
        n.submit(SimTime::ZERO, NodeId(2), NodeId(3), mb(1), 12);
        assert_eq!(n.in_flight(), 1);
        let done = drain(&mut n);
        assert_eq!(
            done.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        assert_eq!(done[2].1, SimTime::from_micros(3_300));
    }

    #[test]
    fn duplex_directions_are_independent() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(1), NodeId(0), mb(1), 2);
        assert_eq!(n.in_flight(), 2);
        let evs = n.advance(SimTime::from_micros(1_100));
        let delivered = evs
            .iter()
            .filter(|e| matches!(e, NetEvent::Delivered(_)))
            .count();
        assert_eq!(delivered, 2);
    }

    #[test]
    fn no_convoy_across_connections() {
        // The fix this design exists for: node 2 occupies node 3's
        // downlink; node 0 has messages for both 3 and 1. The message to
        // the *free* node 1 must not wait behind the blocked connection.
        let mut n = net(4);
        n.submit(SimTime::ZERO, NodeId(2), NodeId(3), mb(10), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(3), mb(1), 2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 3);
        assert_eq!(n.in_flight(), 2, "0→1 starts despite 0→3 being blocked");
        let order: Vec<u64> = drain(&mut n).into_iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn bytes_delivered_accumulates() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(2), 0);
        n.advance(SimTime::from_secs(1));
        assert_eq!(n.bytes_delivered(), mb(2));
    }

    #[test]
    fn staggered_submissions_start_when_wire_frees() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        let delivered = n
            .advance(SimTime::from_micros(1_100))
            .iter()
            .filter(|e| matches!(e, NetEvent::Delivered(_)))
            .count();
        assert_eq!(delivered, 1);
        n.submit(SimTime::from_micros(1_500), NodeId(0), NodeId(1), mb(1), 2);
        assert_eq!(n.next_event_time(), SimTime::from_micros(2_600));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_rejected() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(0), 1, 0);
    }

    #[test]
    fn many_to_many_conserves_work() {
        let mut n = net_lat(4);
        for s in 0..4usize {
            for d in 0..4usize {
                if s != d {
                    n.submit(
                        SimTime::ZERO,
                        NodeId(s),
                        NodeId(d),
                        mb(1),
                        (s * 4 + d) as u64,
                    );
                }
            }
        }
        let done = drain(&mut n);
        assert_eq!(done.len(), 12);
        assert!(n.is_idle());
        assert_eq!(n.bytes_delivered(), mb(12));
    }

    #[test]
    fn is_idle_accounts_for_undelivered_messages() {
        let mut n = net_lat(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.advance(SimTime::from_micros(1_200));
        assert_eq!(n.in_flight(), 0);
        assert!(!n.is_idle(), "delivery still pending");
        n.advance(SimTime::from_micros(1_500));
        assert!(n.is_idle());
    }

    #[test]
    fn xray_records_full_transfer_lifecycle() {
        let mut n = net_lat(2);
        n.enable_xray();
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 2);
        drain(&mut n);
        let us = SimTime::from_micros;
        let recs = n.take_xray();
        // (tag, src, dst, submitted, wire_start, released, delivered):
        // the second message queued behind the first from submission at
        // t=0 until the port freed at 1.1 ms.
        assert_eq!(
            recs,
            vec![
                (1, 0, 1, us(0), us(0), us(1_100), us(1_500)),
                (2, 0, 1, us(0), us(1_100), us(2_200), us(2_600)),
            ]
        );
        assert!(n.take_xray().is_empty(), "take drains the recorder");
    }

    #[test]
    fn degraded_uplink_stretches_the_occupant_mid_flight() {
        let mut n = net(2);
        // 1 MB at 1e9 B/s + 100 µs overhead: release at 1.1 ms unfaulted.
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 7);
        // At 0.5 ms, 0.6 ms of occupancy remains; a 4× degradation
        // stretches it to 2.4 ms → release at 2.9 ms.
        n.advance(SimTime::from_micros(500));
        n.set_port_scale(SimTime::from_micros(500), NodeId(0), true, 0.25);
        assert_eq!(n.next_event_time(), SimTime::from_micros(2_900));
        // Restoring mid-flight shrinks the remainder: at 1.9 ms, 1.0 ms
        // remains at 0.25× ≡ 0.25 ms at full rate → release at 2.15 ms.
        n.advance(SimTime::from_micros(1_900));
        n.set_port_scale(SimTime::from_micros(1_900), NodeId(0), true, 1.0);
        assert_eq!(n.next_event_time(), SimTime::from_micros(2_150));
        let done = drain(&mut n);
        assert_eq!(done, vec![(7, SimTime::from_micros(2_150))]);
    }

    #[test]
    fn degraded_link_slows_new_transfers() {
        let mut n = net(2);
        n.set_port_scale(SimTime::ZERO, NodeId(1), false, 0.5);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        // Occupancy doubles: (100 µs + 1 ms) / 0.5 = 2.2 ms.
        let done = drain(&mut n);
        assert_eq!(done, vec![(1, SimTime::from_micros(2_200))]);
    }

    #[test]
    fn kill_port_drops_in_flight_and_revive_restarts_queued() {
        let mut n = net(3);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(2), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(1), NodeId(2), mb(1), 2);
        // Node 2 flaps at 0.3 ms: tag 1 (on the wire) is killed; tag 2
        // (queued behind the busy downlink) stays queued.
        let dropped = n.kill_port(SimTime::from_micros(300), NodeId(2));
        assert_eq!(
            dropped,
            vec![DroppedTransfer {
                tag: 1,
                src: NodeId(0),
                dst: NodeId(2),
                bytes: mb(1),
            }]
        );
        assert_eq!(n.in_flight(), 0);
        assert_eq!(n.queued(), 1);
        // Nothing can start while the node is down.
        assert!(n.next_event_time().is_never());
        // Revive at 10 ms: tag 2 starts and completes 1.1 ms later.
        n.revive_port(SimTime::from_millis(10), NodeId(2));
        let done = drain(&mut n);
        assert_eq!(done, vec![(2, SimTime::from_micros(11_100))]);
    }

    #[test]
    fn kill_port_lets_the_survivor_take_other_work() {
        let mut n = net(3);
        // 0 → 1 occupies node 0's uplink; 0 → 2 queues behind it.
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(10), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(2), mb(1), 2);
        // Node 1 flaps: the killed transfer frees node 0's uplink, which
        // immediately starts the transfer to the healthy node 2.
        let dropped = n.kill_port(SimTime::from_micros(200), NodeId(1));
        assert_eq!(dropped.len(), 1);
        assert_eq!(n.in_flight(), 1);
        let done = drain(&mut n);
        assert_eq!(done, vec![(2, SimTime::from_micros(1_300))]);
    }

    #[test]
    fn latency_phase_transfers_survive_a_flap() {
        let mut n = net_lat(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        // Past release (1.1 ms) but before delivery (1.5 ms): the stack
        // accepted the message, so a flap must not kill it.
        n.advance(SimTime::from_micros(1_200));
        let dropped = n.kill_port(SimTime::from_micros(1_200), NodeId(1));
        assert!(dropped.is_empty());
        let done = drain(&mut n);
        assert_eq!(done, vec![(1, SimTime::from_micros(1_500))]);
    }

    #[test]
    fn cancel_where_purges_queued_wire_and_latency_phases() {
        let mut n = net_lat(3);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(2), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(2), mb(1), 3);
        n.submit(SimTime::ZERO, NodeId(1), NodeId(2), mb(1), 2);
        // At 1.2 ms: tag 1 released (delivery pending at 1.5 ms), tag 3
        // on the wire since 1.1 ms, tag 2 queued behind the downlink.
        n.advance(SimTime::from_micros(1_200));
        let at = SimTime::from_micros(1_200);
        let dropped = n.cancel_where(at, &mut |tag| tag % 2 == 1);
        assert_eq!(
            dropped.iter().map(|d| d.tag).collect::<Vec<_>>(),
            vec![3, 1],
            "on-wire tag 3 then latency-phase tag 1"
        );
        // The freed downlink immediately serves the surviving tag 2.
        assert_eq!(n.in_flight(), 1);
        assert_eq!(n.queued(), 0);
        let done = drain(&mut n);
        assert_eq!(done, vec![(2, SimTime::from_micros(2_700))]);
        assert!(n.is_idle());
    }

    #[test]
    fn cancel_where_removes_queued_transfers_mid_queue() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 4);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 2);
        // Cancel the middle queued transfer; FIFO order of the rest holds.
        let dropped = n.cancel_where(SimTime::ZERO, &mut |tag| tag == 4);
        assert_eq!(dropped.len(), 1);
        let order: Vec<u64> = drain(&mut n).into_iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn parallel_destinations_fill_the_fabric() {
        // 2 workers × 2 shards: with per-connection queues and symmetric
        // schedules, both shards receive concurrently — aggregate
        // completes in ~half the serialised time.
        let mut n = net(4);
        // workers 0,1; shards 2,3. Each worker sends 1 MB to each shard.
        for w in 0..2usize {
            for s in 2..4usize {
                n.submit(
                    SimTime::ZERO,
                    NodeId(w),
                    NodeId(s),
                    mb(1),
                    (w * 10 + s) as u64,
                );
            }
        }
        let done = drain(&mut n);
        let last = done.iter().map(|(_, t)| *t).max().unwrap();
        // Total 4 MB over 2 downlinks at 1 ms+θ each: ~2.2–2.4 ms, not
        // the ~4.4 ms a convoying fabric would take.
        assert!(
            last <= SimTime::from_micros(2_500),
            "fabric convoyed: finished at {last}"
        );
    }
}
