//! The point-to-point network state machine.

use std::cell::Cell;
use std::collections::{BTreeSet, VecDeque};

use bs_sim::SimTime;
use bs_telemetry::{MetricSet, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::transport::NetConfig;

/// A recorded wire occupancy: `(tag, src, dst, start, end)`.
pub type WireSpan = (u64, usize, usize, SimTime, SimTime);

/// A recorded full transfer lifecycle for causal tracing:
/// `(tag, src, dst, submitted, wire_start, released, delivered)`.
pub type WireXrayRecord = (u64, usize, usize, SimTime, SimTime, SimTime, SimTime);

/// Index of a node (worker or parameter-server shard) in the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Handle for a submitted transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TransferId(pub u64);

/// An event reported by [`Network::advance`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetEvent {
    /// The message's wire occupancy ended: ports freed, the sender-side
    /// stack accepted it in full. This is what a ps-lite-style sender
    /// thread observes — P3's stop-and-wait advances on this signal.
    Released(CompletedTransfer),
    /// The message was delivered end-to-end (occupancy + latency): the
    /// receiver can act (aggregate, grant a pull) and the sender's
    /// application-level acknowledgement arrives.
    Delivered(CompletedTransfer),
}

/// A transfer milestone, reported by [`Network::advance`] inside
/// [`NetEvent`]; `finished_at` is the release or delivery instant
/// respectively.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompletedTransfer {
    /// The handle returned by `submit`.
    pub id: TransferId,
    /// Sender node.
    pub src: NodeId,
    /// Receiver node.
    pub dst: NodeId,
    /// Payload size.
    pub bytes: u64,
    /// Caller-defined tag, passed through verbatim.
    pub tag: u64,
    /// Virtual time of the milestone.
    pub finished_at: SimTime,
}

#[derive(Clone, Debug)]
struct Transfer {
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    tag: u64,
    /// True once the transfer occupies its two ports.
    started: bool,
    /// Wire-occupancy start, for trace recording.
    started_at: SimTime,
    /// Submission instant, for xray recording.
    submitted_at: SimTime,
}

/// One node's NIC state.
///
/// The uplink keeps one FIFO queue **per destination** — one ps-lite
/// connection per server — and serves them round-robin: while shard A's
/// downlink is busy with another worker, this worker's messages for
/// shard B proceed. Within a connection, order is strict FIFO (the
/// non-preemptible stack the scheduler schedules around). The downlink
/// serves one message at a time; blocked senders queue FIFO per
/// destination.
#[derive(Clone, Debug, Default)]
struct Nic {
    /// Transfer currently occupying the uplink.
    up_current: Option<TransferId>,
    /// Transfer currently occupying the downlink.
    down_current: Option<TransferId>,
    /// Per-destination FIFO connection queues (index = destination node).
    up_queues: Vec<VecDeque<TransferId>>,
    /// Round-robin cursor over destinations.
    rr_cursor: usize,
    /// Senders whose connection to *this* node is blocked on its busy
    /// downlink, in arrival order.
    down_waiters: VecDeque<NodeId>,
}

/// The network fabric: `n` nodes, each with a duplex NIC at the
/// configured bandwidth; per-connection FIFO with round-robin service at
/// the uplink and head-of-line blocking only *within* a connection.
///
/// A message's life has two phases, matching [`NetConfig`]:
///
/// 1. **Occupancy** — the sender uplink and receiver downlink are held for
///    `wire_overhead + size/bandwidth`; when it ends, both ports free and
///    the next queued messages start (pipelining).
/// 2. **Delivery** — `latency` later the message is *complete*: only now
///    does [`Network::advance`] report it (credits return, aggregation
///    fires). Stop-and-wait senders therefore pay the full round trip per
///    message; windowed senders hide it — the paper's §4.2 trade-off.
#[derive(Clone, Debug)]
pub struct Network {
    cfg: NetConfig,
    nics: Vec<Nic>,
    transfers: Vec<Transfer>,
    /// Wire-occupancy ends, ordered: ports free at these instants.
    releases: BTreeSet<(SimTime, TransferId)>,
    /// Delivery instants, ordered: completions reported at these.
    deliveries: BTreeSet<(SimTime, TransferId)>,
    /// Memoised `min(releases.first, deliveries.first)`; `None` when
    /// stale. Filled lazily so idle polls from the event loop are O(1).
    next_event: Cell<Option<SimTime>>,
    /// Bytes delivered since construction.
    bytes_delivered: u64,
    /// Transfers delivered since construction.
    transfers_delivered: u64,
    /// High-water mark of concurrently started (on-wire) transfers.
    peak_in_flight: usize,
    /// When enabled, completed wire occupancies.
    trace: Option<Vec<WireSpan>>,
    /// When enabled, full transfer lifecycles for causal tracing.
    xray: Option<Vec<WireXrayRecord>>,
    /// Accumulated wire-busy time per uplink, for utilisation accounting.
    up_busy: Vec<SimTime>,
    /// Accumulated wire-busy time per downlink.
    down_busy: Vec<SimTime>,
    /// `Some` only while metrics recording is enabled.
    telem: Option<NetTelemetry>,
}

/// Metric series for the FIFO fabric; each NIC direction is busy (1) or
/// idle (0), so the per-port utilisation series integrates to exactly the
/// accumulated wire-busy time.
#[derive(Clone, Debug)]
struct NetTelemetry {
    up_util: Vec<TimeSeries>,
    down_util: Vec<TimeSeries>,
    /// Transfers currently occupying wires.
    active: TimeSeries,
    /// Transfers submitted but not yet on the wire.
    queued: TimeSeries,
}

impl NetTelemetry {
    fn new(now: SimTime, num_nodes: usize) -> NetTelemetry {
        let mut zero = TimeSeries::new();
        zero.record(now, 0.0);
        NetTelemetry {
            up_util: vec![zero.clone(); num_nodes],
            down_util: vec![zero.clone(); num_nodes],
            active: zero.clone(),
            queued: zero,
        }
    }
}

impl Network {
    /// Creates a fabric of `num_nodes` NICs.
    pub fn new(num_nodes: usize, cfg: NetConfig) -> Self {
        assert!(num_nodes >= 2, "a network needs at least two nodes");
        let nic = Nic {
            up_queues: vec![VecDeque::new(); num_nodes],
            ..Nic::default()
        };
        Network {
            cfg,
            nics: vec![nic; num_nodes],
            transfers: Vec::new(),
            releases: BTreeSet::new(),
            deliveries: BTreeSet::new(),
            next_event: Cell::new(None),
            bytes_delivered: 0,
            transfers_delivered: 0,
            peak_in_flight: 0,
            trace: None,
            xray: None,
            up_busy: vec![SimTime::ZERO; num_nodes],
            down_busy: vec![SimTime::ZERO; num_nodes],
            telem: None,
        }
    }

    /// Starts recording per-port utilisation and queue-depth series.
    /// Recording never changes fabric behaviour.
    pub fn enable_telemetry(&mut self, now: SimTime) {
        if self.telem.is_none() {
            self.telem = Some(NetTelemetry::new(now, self.nics.len()));
        }
    }

    /// Takes the recorded metrics with summaries closed at `now`, or
    /// `None` if telemetry was never enabled.
    pub fn take_metrics(&mut self, now: SimTime) -> Option<MetricSet> {
        let t = self.telem.take()?;
        let mut set = MetricSet::new();
        set.horizon = now;
        set.counter("transfers_delivered", self.transfers_delivered);
        set.counter("bytes_delivered", self.bytes_delivered);
        set.series("active_transfers", t.active);
        set.series("queued_transfers", t.queued);
        for (i, s) in t.up_util.into_iter().enumerate() {
            set.series(format!("nic{i}/up_util"), s);
        }
        for (i, s) in t.down_util.into_iter().enumerate() {
            set.series(format!("nic{i}/down_util"), s);
        }
        Some(set)
    }

    /// Accumulated wire-busy time of every uplink (completed occupancies
    /// only). Divide by the run's makespan for utilisation.
    pub fn uplink_busy(&self) -> &[SimTime] {
        &self.up_busy
    }

    /// Accumulated wire-busy time of every downlink.
    pub fn downlink_busy(&self) -> &[SimTime] {
        &self.down_busy
    }

    /// Enables wire-occupancy span recording (see [`Self::take_trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Drains the recorded spans: `(tag, src, dst, start, end)` per
    /// completed wire occupancy, in release order.
    pub fn take_trace(&mut self) -> Vec<WireSpan> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Enables full-lifecycle transfer recording for causal tracing.
    /// Recording never changes fabric behaviour.
    pub fn enable_xray(&mut self) {
        if self.xray.is_none() {
            self.xray = Some(Vec::new());
        }
    }

    /// Drains the recorded transfer lifecycles, in release order.
    pub fn take_xray(&mut self) -> Vec<WireXrayRecord> {
        self.xray.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nics.len()
    }

    /// End-to-end time for a message of `bytes` on an unloaded wire.
    pub fn xfer_time(&self, bytes: u64) -> SimTime {
        self.cfg.xfer_time(bytes)
    }

    /// Total payload bytes delivered so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Transfers delivered end-to-end so far.
    pub fn transfers_delivered(&self) -> u64 {
        self.transfers_delivered
    }

    /// Highest number of simultaneously on-wire transfers seen so far.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Submits a transfer at time `now`. It joins the `src → dst`
    /// connection queue and starts once it reaches that queue's head, the
    /// uplink picks the connection (round-robin) and `dst`'s downlink is
    /// free. `tag` is returned verbatim on completion events.
    pub fn submit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId {
        assert!(src.0 < self.nics.len(), "src {src:?} out of range");
        assert!(dst.0 < self.nics.len(), "dst {dst:?} out of range");
        assert_ne!(src, dst, "loopback transfers are not modelled");
        let id = TransferId(self.transfers.len() as u64);
        self.transfers.push(Transfer {
            src,
            dst,
            bytes,
            tag,
            started: false,
            started_at: SimTime::ZERO,
            submitted_at: now,
        });
        self.nics[src.0].up_queues[dst.0].push_back(id);
        if let Some(t) = self.telem.as_mut() {
            t.queued.step(now, 1.0);
        }
        self.try_start(now, src);
        id
    }

    /// Earliest instant at which anything changes (a port frees or a
    /// message delivers), or `SimTime::MAX` if the wire is silent.
    pub fn next_event_time(&self) -> SimTime {
        if let Some(t) = self.next_event.get() {
            return t;
        }
        let r = self
            .releases
            .first()
            .map(|(t, _)| *t)
            .unwrap_or(SimTime::MAX);
        let d = self
            .deliveries
            .first()
            .map(|(t, _)| *t)
            .unwrap_or(SimTime::MAX);
        let t = r.min(d);
        self.next_event.set(Some(t));
        t
    }

    /// Processes everything up to `now`: frees ports whose occupancy
    /// ended (starting queued successors, reported as
    /// [`NetEvent::Released`]) and reports messages delivered at or
    /// before `now` as [`NetEvent::Delivered`], all in time order.
    pub fn advance(&mut self, now: SimTime) -> Vec<NetEvent> {
        let mut done: Vec<NetEvent> = Vec::new();
        self.advance_into(now, &mut done);
        done
    }

    /// Like [`Self::advance`] but appends events into a caller-provided
    /// buffer, so the event loop can reuse one allocation across ticks.
    pub fn advance_into(&mut self, now: SimTime, done: &mut Vec<NetEvent>) {
        loop {
            let next_release = self.releases.first().copied();
            let next_delivery = self.deliveries.first().copied();
            // Process in time order; at equal instants, releases first so
            // freed ports start successors before completions cascade.
            let take_release = match (next_release, next_delivery) {
                (Some((rt, _)), Some((dt, _))) => rt <= dt,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_release {
                let (t, id) = next_release.expect("present");
                if t > now {
                    break;
                }
                self.releases.pop_first();
                self.next_event.set(None);
                let tr = &self.transfers[id.0 as usize];
                let (src, dst, bytes, tag) = (tr.src, tr.dst, tr.bytes, tr.tag);
                debug_assert_eq!(self.nics[src.0].up_current, Some(id));
                debug_assert_eq!(self.nics[dst.0].down_current, Some(id));
                self.nics[src.0].up_current = None;
                self.nics[dst.0].down_current = None;
                let popped = self.nics[src.0].up_queues[dst.0].pop_front();
                debug_assert_eq!(popped, Some(id));
                let occ = t.saturating_sub(self.transfers[id.0 as usize].started_at);
                self.up_busy[src.0] += occ;
                self.down_busy[dst.0] += occ;
                if let Some(trace) = &mut self.trace {
                    let started_at = self.transfers[id.0 as usize].started_at;
                    trace.push((tag, src.0, dst.0, started_at, t));
                }
                if let Some(xray) = &mut self.xray {
                    let tr = &self.transfers[id.0 as usize];
                    xray.push((
                        tag,
                        src.0,
                        dst.0,
                        tr.submitted_at,
                        tr.started_at,
                        t,
                        t + self.cfg.transport.latency,
                    ));
                }
                if let Some(te) = self.telem.as_mut() {
                    te.active.step(t, -1.0);
                    te.up_util[src.0].record(t, 0.0);
                    te.down_util[dst.0].record(t, 0.0);
                }
                self.try_start(t, src);
                self.serve_down_waiters(t, dst);
                done.push(NetEvent::Released(CompletedTransfer {
                    id,
                    src,
                    dst,
                    bytes,
                    tag,
                    finished_at: t,
                }));
            } else {
                let (t, id) = next_delivery.expect("present");
                if t > now {
                    break;
                }
                self.deliveries.pop_first();
                self.next_event.set(None);
                let tr = &self.transfers[id.0 as usize];
                self.bytes_delivered += tr.bytes;
                self.transfers_delivered += 1;
                done.push(NetEvent::Delivered(CompletedTransfer {
                    id,
                    src: tr.src,
                    dst: tr.dst,
                    bytes: tr.bytes,
                    tag: tr.tag,
                    finished_at: t,
                }));
            }
        }
    }

    /// Picks the next startable connection head at `src`'s uplink,
    /// scanning destinations round-robin from the cursor; registers
    /// interest in busy downlinks along the way.
    fn try_start(&mut self, now: SimTime, src: NodeId) {
        if self.nics[src.0].up_current.is_some() {
            return;
        }
        let n = self.nics.len();
        let start = self.nics[src.0].rr_cursor;
        for k in 0..n {
            let dst = (start + k) % n;
            let Some(&head) = self.nics[src.0].up_queues[dst].front() else {
                continue;
            };
            if self.transfers[head.0 as usize].started {
                continue;
            }
            if self.nics[dst].down_current.is_some() {
                // Blocked connection: register interest exactly once.
                if !self.nics[dst].down_waiters.contains(&src) {
                    self.nics[dst].down_waiters.push_back(src);
                }
                continue;
            }
            self.nics[src.0].rr_cursor = (dst + 1) % n;
            self.start(now, head);
            return;
        }
    }

    /// When `dst`'s downlink frees, offer it to blocked senders in FIFO
    /// arrival order. A registered sender whose uplink is momentarily
    /// busy keeps its place in line (dropping it would let a
    /// phase-locked competitor starve the connection forever); senders
    /// with nothing left for this destination are dropped as stale.
    fn serve_down_waiters(&mut self, now: SimTime, dst: NodeId) {
        let mut rotations = self.nics[dst.0].down_waiters.len();
        while self.nics[dst.0].down_current.is_none() && rotations > 0 {
            rotations -= 1;
            let Some(waiter) = self.nics[dst.0].down_waiters.pop_front() else {
                return;
            };
            let head = self.nics[waiter.0].up_queues[dst.0].front().copied();
            match head {
                Some(h) if !self.transfers[h.0 as usize].started => {
                    if self.nics[waiter.0].up_current.is_none() {
                        self.nics[waiter.0].rr_cursor = (dst.0 + 1) % self.nics.len();
                        self.start(now, h);
                    } else {
                        // Sender busy right now: keep the reservation.
                        self.nics[dst.0].down_waiters.push_back(waiter);
                    }
                }
                _ => {
                    // Stale entry (served elsewhere); let the sender look
                    // for other work.
                    self.try_start(now, waiter);
                }
            }
        }
    }

    fn start(&mut self, now: SimTime, id: TransferId) {
        let bytes = self.transfers[id.0 as usize].bytes;
        let release = now + self.cfg.occupancy(bytes);
        let deliver = release + self.cfg.transport.latency;
        let t = &mut self.transfers[id.0 as usize];
        t.started = true;
        t.started_at = now;
        let (src, dst) = (t.src, t.dst);
        debug_assert!(self.nics[src.0].up_current.is_none());
        debug_assert!(self.nics[dst.0].down_current.is_none());
        self.nics[src.0].up_current = Some(id);
        self.nics[dst.0].down_current = Some(id);
        self.releases.insert((release, id));
        self.deliveries.insert((deliver, id));
        self.next_event.set(None);
        self.peak_in_flight = self.peak_in_flight.max(self.releases.len());
        if let Some(t) = self.telem.as_mut() {
            t.queued.step(now, -1.0);
            t.active.step(now, 1.0);
            t.up_util[src.0].record(now, 1.0);
            t.down_util[dst.0].record(now, 1.0);
        }
    }

    /// Number of transfers currently occupying wires.
    pub fn in_flight(&self) -> usize {
        self.nics.iter().filter(|n| n.up_current.is_some()).count()
    }

    /// Number of transfers queued (submitted but not yet on the wire),
    /// across all senders.
    pub fn queued(&self) -> usize {
        self.nics
            .iter()
            .flat_map(|n| n.up_queues.iter())
            .flatten()
            .filter(|id| !self.transfers[id.0 as usize].started)
            .count()
    }

    /// Debug helper: (src, dst, tag) of every submitted-but-unstarted
    /// transfer, plus whether src's uplink and dst's downlink are busy.
    pub fn debug_stalled(&self) -> Vec<(usize, usize, u64, bool, bool)> {
        let mut out = Vec::new();
        for (src, nic) in self.nics.iter().enumerate() {
            for (dst, q) in nic.up_queues.iter().enumerate() {
                for id in q {
                    let t = &self.transfers[id.0 as usize];
                    if !t.started {
                        out.push((
                            src,
                            dst,
                            t.tag,
                            self.nics[src].up_current.is_some(),
                            self.nics[dst].down_current.is_some(),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Debug helper: (src, dst, tag) of transfers currently holding ports,
    /// plus the sizes of the release/delivery sets.
    pub fn debug_in_flight(&self) -> (Vec<(usize, usize, u64)>, usize, usize) {
        let mut cur = Vec::new();
        for nic in &self.nics {
            if let Some(id) = nic.up_current {
                let t = &self.transfers[id.0 as usize];
                cur.push((t.src.0, t.dst.0, t.tag));
            }
        }
        (cur, self.releases.len(), self.deliveries.len())
    }

    /// True when nothing is queued, in flight, or awaiting delivery.
    pub fn is_idle(&self) -> bool {
        self.in_flight() == 0 && self.queued() == 0 && self.deliveries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;

    /// 8 Gbps, perfect efficiency (1e9 B/s), 100 µs wire overhead, no
    /// latency: easy arithmetic for occupancy-oriented tests.
    fn net(n: usize) -> Network {
        let cfg = NetConfig::gbps(
            8.0,
            Transport::custom("t", SimTime::from_micros(100), SimTime::ZERO, 1.0),
        );
        Network::new(n, cfg)
    }

    /// Same wire but with 400 µs overlappable latency.
    fn net_lat(n: usize) -> Network {
        let cfg = NetConfig::gbps(
            8.0,
            Transport::custom(
                "t",
                SimTime::from_micros(100),
                SimTime::from_micros(400),
                1.0,
            ),
        );
        Network::new(n, cfg)
    }

    fn mb(x: u64) -> u64 {
        x * 1_000_000
    }

    fn drain(n: &mut Network) -> Vec<(u64, SimTime)> {
        let mut out = Vec::new();
        loop {
            let t = n.next_event_time();
            if t.is_never() {
                break;
            }
            out.extend(n.advance(t).into_iter().filter_map(|e| match e {
                NetEvent::Delivered(c) => Some((c.tag, c.finished_at)),
                NetEvent::Released(_) => None,
            }));
        }
        out
    }

    #[test]
    fn single_transfer_takes_overhead_plus_serialisation() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 7);
        assert_eq!(n.next_event_time(), SimTime::from_micros(1_100));
        let done = n.advance(SimTime::from_micros(1_100));
        // One release + one delivery (zero latency: same instant).
        assert_eq!(done.len(), 2);
        assert!(matches!(done[0], NetEvent::Released(c) if c.tag == 7));
        assert!(matches!(done[1], NetEvent::Delivered(c) if c.tag == 7));
        assert!(n.is_idle());
    }

    #[test]
    fn latency_delays_delivery_but_not_the_next_start() {
        let mut n = net_lat(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 2);
        let done = drain(&mut n);
        // Deliveries at 1.5 ms and 2.6 ms: the second message started at
        // 1.1 ms (port release), not at 1.5 ms (delivery) — pipelined.
        assert_eq!(
            done,
            vec![
                (1, SimTime::from_micros(1_500)),
                (2, SimTime::from_micros(2_600)),
            ]
        );
    }

    #[test]
    fn connection_queue_is_fifo() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 2);
        let done = drain(&mut n);
        assert_eq!(done[0].0, 1);
        assert_eq!(done[1], (2, SimTime::from_micros(2_200)));
    }

    #[test]
    fn uplink_round_robins_across_connections() {
        let mut n = net(4);
        // Two messages per destination; service should interleave
        // 1,2,3,1,2,3 rather than draining one connection first.
        for round in 0..2u64 {
            for d in 1..4u64 {
                n.submit(
                    SimTime::ZERO,
                    NodeId(0),
                    NodeId(d as usize),
                    mb(1),
                    d * 10 + round,
                );
            }
        }
        let order: Vec<u64> = drain(&mut n).into_iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30, 11, 21, 31]);
    }

    #[test]
    fn incast_serialises_on_receiver_downlink_in_fifo_order() {
        let mut n = net(4);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(3), mb(1), 10);
        n.submit(SimTime::ZERO, NodeId(1), NodeId(3), mb(1), 11);
        n.submit(SimTime::ZERO, NodeId(2), NodeId(3), mb(1), 12);
        assert_eq!(n.in_flight(), 1);
        let done = drain(&mut n);
        assert_eq!(
            done.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        assert_eq!(done[2].1, SimTime::from_micros(3_300));
    }

    #[test]
    fn duplex_directions_are_independent() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(1), NodeId(0), mb(1), 2);
        assert_eq!(n.in_flight(), 2);
        let evs = n.advance(SimTime::from_micros(1_100));
        let delivered = evs
            .iter()
            .filter(|e| matches!(e, NetEvent::Delivered(_)))
            .count();
        assert_eq!(delivered, 2);
    }

    #[test]
    fn no_convoy_across_connections() {
        // The fix this design exists for: node 2 occupies node 3's
        // downlink; node 0 has messages for both 3 and 1. The message to
        // the *free* node 1 must not wait behind the blocked connection.
        let mut n = net(4);
        n.submit(SimTime::ZERO, NodeId(2), NodeId(3), mb(10), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(3), mb(1), 2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 3);
        assert_eq!(n.in_flight(), 2, "0→1 starts despite 0→3 being blocked");
        let order: Vec<u64> = drain(&mut n).into_iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn bytes_delivered_accumulates() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(2), 0);
        n.advance(SimTime::from_secs(1));
        assert_eq!(n.bytes_delivered(), mb(2));
    }

    #[test]
    fn staggered_submissions_start_when_wire_frees() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        let delivered = n
            .advance(SimTime::from_micros(1_100))
            .iter()
            .filter(|e| matches!(e, NetEvent::Delivered(_)))
            .count();
        assert_eq!(delivered, 1);
        n.submit(SimTime::from_micros(1_500), NodeId(0), NodeId(1), mb(1), 2);
        assert_eq!(n.next_event_time(), SimTime::from_micros(2_600));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_rejected() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(0), 1, 0);
    }

    #[test]
    fn many_to_many_conserves_work() {
        let mut n = net_lat(4);
        for s in 0..4usize {
            for d in 0..4usize {
                if s != d {
                    n.submit(
                        SimTime::ZERO,
                        NodeId(s),
                        NodeId(d),
                        mb(1),
                        (s * 4 + d) as u64,
                    );
                }
            }
        }
        let done = drain(&mut n);
        assert_eq!(done.len(), 12);
        assert!(n.is_idle());
        assert_eq!(n.bytes_delivered(), mb(12));
    }

    #[test]
    fn is_idle_accounts_for_undelivered_messages() {
        let mut n = net_lat(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.advance(SimTime::from_micros(1_200));
        assert_eq!(n.in_flight(), 0);
        assert!(!n.is_idle(), "delivery still pending");
        n.advance(SimTime::from_micros(1_500));
        assert!(n.is_idle());
    }

    #[test]
    fn xray_records_full_transfer_lifecycle() {
        let mut n = net_lat(2);
        n.enable_xray();
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 2);
        drain(&mut n);
        let us = SimTime::from_micros;
        let recs = n.take_xray();
        // (tag, src, dst, submitted, wire_start, released, delivered):
        // the second message queued behind the first from submission at
        // t=0 until the port freed at 1.1 ms.
        assert_eq!(
            recs,
            vec![
                (1, 0, 1, us(0), us(0), us(1_100), us(1_500)),
                (2, 0, 1, us(0), us(1_100), us(2_200), us(2_600)),
            ]
        );
        assert!(n.take_xray().is_empty(), "take drains the recorder");
    }

    #[test]
    fn parallel_destinations_fill_the_fabric() {
        // 2 workers × 2 shards: with per-connection queues and symmetric
        // schedules, both shards receive concurrently — aggregate
        // completes in ~half the serialised time.
        let mut n = net(4);
        // workers 0,1; shards 2,3. Each worker sends 1 MB to each shard.
        for w in 0..2usize {
            for s in 2..4usize {
                n.submit(
                    SimTime::ZERO,
                    NodeId(w),
                    NodeId(s),
                    mb(1),
                    (w * 10 + s) as u64,
                );
            }
        }
        let done = drain(&mut n);
        let last = done.iter().map(|(_, t)| *t).max().unwrap();
        // Total 4 MB over 2 downlinks at 1 ms+θ each: ~2.2–2.4 ms, not
        // the ~4.4 ms a convoying fabric would take.
        assert!(
            last <= SimTime::from_micros(2_500),
            "fabric convoyed: finished at {last}"
        );
    }
}
