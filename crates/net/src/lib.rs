//! Network substrate: the paper's analytical network model made executable.
//!
//! §4.1 of the paper models the network exactly as this crate implements it:
//!
//! * each message takes `size / bandwidth` to transmit, **plus** a constant
//!   per-message *partition overhead* θ (RPC serialisation, ACKs,
//!   synchronisation — ≈ 300 µs on their TCP testbed, much lower on RDMA);
//! * the communication stack underneath the framework is a **FIFO queue**:
//!   once a tensor is handed to the stack it cannot be preempted, which is
//!   the entire reason the scheduler partitions tensors and meters them out
//!   with credits.
//!
//! Topology is the paper's testbed: a full-bisection fabric where each node
//! (worker or parameter server) is limited by its own NIC, full duplex.
//! A point-to-point transfer therefore occupies two resources: the sender's
//! **uplink** and the receiver's **downlink**. Transfers submitted to a
//! sender are serviced strictly FIFO (that is what the scheduler schedules
//! *around*); a transfer at the head of its sender queue additionally waits
//! for the receiver's downlink — head-of-line blocking, which reproduces
//! incast serialisation at a hot parameter-server shard.

pub mod contention;
pub mod fabric;
pub mod fluid;
pub mod network;
pub mod port;
pub mod scope;
pub mod transport;

pub use contention::{ContentionLog, ContentionRecorder, OccupancySpan};
pub use fabric::{Fabric, FabricModel};
pub use fluid::FluidNetwork;
pub use network::{
    CompletedTransfer, DroppedTransfer, NetEvent, Network, NodeId, TransferId, WireSpan,
    WireXrayRecord,
};
pub use port::{LoggedSubmit, NetPort, SubmitLog};
pub use scope::ScopeWindow;
pub use transport::{NetConfig, Transport};
