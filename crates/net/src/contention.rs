//! Link-contention recording: *which jobs* are active on each NIC
//! direction, and whose bytes occupied the wire when.
//!
//! The cluster driver multiplexes co-located jobs onto one fabric by
//! packing a job index into the high bits of every transfer tag
//! (`bs-runtime`'s tag namespace). This crate cannot depend on the
//! runtime, so the recorder takes the extraction function as a plain
//! `fn(u64) -> usize` at enable time and stays job-layout-agnostic.
//!
//! Two complementary views are recorded per NIC direction (uplinks are
//! ports `0..n`, downlinks `n..2n`):
//!
//! * an *active-set* [`SetSeries`] — bit `j` is set while job `j` has at
//!   least one transfer pending on the direction (submitted and not yet
//!   delivered or dropped), sampled only on change;
//! * *occupancy spans* — `(port, job, bytes, start, end)` per completed
//!   wire occupancy, so byte shares can be split into solo vs contended
//!   time against the active-set series.
//!
//! Recording is strictly observational: the fabrics call the hooks from
//! existing code paths and nothing feeds back, so enabling contention
//! recording cannot change a single simulation event (pinned by the
//! golden byte-identity tests).

use bs_sim::SimTime;
use bs_telemetry::SetSeries;

/// One completed wire occupancy on one NIC direction:
/// `(port, job, bytes, start, end)`.
pub type OccupancySpan = (usize, usize, u64, SimTime, SimTime);

/// The drained recording: per-direction active-job series plus every
/// occupancy span, ready for reduction into a contention matrix.
#[derive(Clone, Debug, Default)]
pub struct ContentionLog {
    /// Number of nodes in the fabric (ports are `2 × nodes`).
    pub nodes: usize,
    /// Per-port active-job bitmask series (up `0..n`, down `n..2n`).
    pub active: Vec<SetSeries>,
    /// Completed wire occupancies, in release order.
    pub occupancy: Vec<OccupancySpan>,
}

/// The per-fabric recorder; `Some` only while contention recording is
/// enabled, mirroring the telemetry/trace/xray pattern.
#[derive(Clone, Debug)]
pub struct ContentionRecorder {
    job_of: fn(u64) -> usize,
    /// Per-port per-job pending transfer counts; bit `j` of the port's
    /// series is set while `pending[port][j] > 0`.
    pending: Vec<Vec<u32>>,
    active: Vec<SetSeries>,
    occupancy: Vec<OccupancySpan>,
}

impl ContentionRecorder {
    /// A recorder for a fabric of `nodes` NICs, starting at `now` with
    /// every direction idle. `job_of` maps a transfer tag to its job
    /// index (must be `< 64`; the active set is a bitmask).
    pub fn new(now: SimTime, nodes: usize, job_of: fn(u64) -> usize) -> ContentionRecorder {
        let mut idle = SetSeries::new();
        idle.record(now, 0);
        ContentionRecorder {
            job_of,
            pending: vec![Vec::new(); 2 * nodes],
            active: vec![idle; 2 * nodes],
            occupancy: Vec::new(),
        }
    }

    fn uplink(&self, src: usize) -> usize {
        src
    }

    fn downlink(&self, dst: usize) -> usize {
        self.active.len() / 2 + dst
    }

    fn job(&self, tag: u64) -> usize {
        let j = (self.job_of)(tag);
        debug_assert!(j < 64, "job index {j} does not fit the bitmask");
        j
    }

    fn inc(&mut self, now: SimTime, port: usize, job: usize) {
        let counts = &mut self.pending[port];
        if counts.len() <= job {
            counts.resize(job + 1, 0);
        }
        counts[job] += 1;
        if counts[job] == 1 {
            let mask = self.active[port].last_mask() | (1 << job);
            self.active[port].record(now, mask);
        }
    }

    fn dec(&mut self, now: SimTime, port: usize, job: usize) {
        let counts = &mut self.pending[port];
        debug_assert!(counts.get(job).copied().unwrap_or(0) > 0, "unbalanced dec");
        if let Some(c) = counts.get_mut(job) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                let mask = self.active[port].last_mask() & !(1 << job);
                self.active[port].record(now, mask);
            }
        }
    }

    /// A transfer entered the fabric: its job becomes active on the
    /// sender uplink and receiver downlink until delivery or drop.
    pub fn on_submit(&mut self, now: SimTime, src: usize, dst: usize, tag: u64) {
        let job = self.job(tag);
        let (up, down) = (self.uplink(src), self.downlink(dst));
        self.inc(now, up, job);
        self.inc(now, down, job);
    }

    /// A transfer was delivered end-to-end: its job's pending count
    /// drops on both directions.
    pub fn on_delivered(&mut self, now: SimTime, src: usize, dst: usize, tag: u64) {
        let job = self.job(tag);
        let (up, down) = (self.uplink(src), self.downlink(dst));
        self.dec(now, up, job);
        self.dec(now, down, job);
    }

    /// A transfer was killed mid-flight and will never deliver: balance
    /// the submit like a delivery at the kill instant.
    pub fn on_dropped(&mut self, now: SimTime, src: usize, dst: usize, tag: u64) {
        self.on_delivered(now, src, dst, tag);
    }

    /// A wire occupancy completed (or was cut short by a kill): record
    /// the byte span on both directions for share attribution.
    pub fn on_wire(
        &mut self,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: u64,
        start: SimTime,
        end: SimTime,
    ) {
        let job = self.job(tag);
        let (up, down) = (self.uplink(src), self.downlink(dst));
        self.occupancy.push((up, job, bytes, start, end));
        self.occupancy.push((down, job, bytes, start, end));
    }

    /// Drains the recording.
    pub fn take(&mut self) -> ContentionLog {
        let nodes = self.active.len() / 2;
        let mut idle = SetSeries::new();
        idle.record(SimTime::ZERO, 0);
        ContentionLog {
            nodes,
            active: std::mem::replace(&mut self.active, vec![idle; 2 * nodes]),
            occupancy: std::mem::take(&mut self.occupancy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    fn low_bits(tag: u64) -> usize {
        (tag & 0b11) as usize
    }

    #[test]
    fn active_set_tracks_overlapping_jobs_per_direction() {
        let mut r = ContentionRecorder::new(us(0), 2, low_bits);
        // Job 0 and job 1 overlap on node 0's uplink for [10, 20)µs.
        r.on_submit(us(5), 0, 1, 0);
        r.on_submit(us(10), 0, 1, 1);
        r.on_delivered(us(20), 0, 1, 0);
        r.on_delivered(us(30), 0, 1, 1);
        let log = r.take();
        assert_eq!(log.nodes, 2);
        let segs: Vec<_> = log.active[0].segments(us(40)).collect();
        assert_eq!(
            segs,
            vec![
                (us(0), us(5), 0b00),
                (us(5), us(10), 0b01),
                (us(10), us(20), 0b11),
                (us(20), us(30), 0b10),
                (us(30), us(40), 0b00),
            ]
        );
        // Downlink of node 1 (port 2 + 1 = 3) saw the same overlap.
        let down: Vec<_> = log.active[3].segments(us(40)).collect();
        assert_eq!(down, segs);
    }

    #[test]
    fn refcounts_keep_the_bit_while_any_transfer_is_pending() {
        let mut r = ContentionRecorder::new(us(0), 2, low_bits);
        r.on_submit(us(0), 0, 1, 0);
        r.on_submit(us(0), 0, 1, 0); // second transfer, same job
        r.on_delivered(us(10), 0, 1, 0);
        // Still one pending: the bit must stay set.
        assert_eq!(r.active[0].last_mask(), 0b01);
        r.on_dropped(us(20), 0, 1, 0);
        assert_eq!(r.active[0].last_mask(), 0);
    }

    #[test]
    fn occupancy_lands_on_both_directions() {
        let mut r = ContentionRecorder::new(us(0), 3, low_bits);
        r.on_wire(0, 2, 1, 1_000, us(0), us(10));
        let log = r.take();
        assert_eq!(
            log.occupancy,
            vec![(0, 1, 1_000, us(0), us(10)), (5, 1, 1_000, us(0), us(10))]
        );
    }
}
