//! A fabric is either the FIFO network or the fluid network, behind one
//! dispatching wrapper so the runtime can switch sharing disciplines with
//! a config flag.

use bs_sim::SimTime;
use serde::Serialize;

use crate::fluid::FluidNetwork;
use crate::network::{DroppedTransfer, NetEvent, Network, NodeId, TransferId};
use crate::transport::NetConfig;

/// Which sharing discipline the point-to-point fabric uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FabricModel {
    /// Strict FIFO service per NIC direction with head-of-line blocking —
    /// the paper's §2.2 abstraction of the communication stack (default).
    SerialFifo,
    /// Max-min fair fluid multiplexing — how multi-connection transports
    /// actually share a NIC; see [`crate::fluid`].
    FairShare,
}

/// A point-to-point fabric of either discipline.
#[derive(Clone, Debug)]
pub enum Fabric {
    /// FIFO fabric.
    Fifo(Network),
    /// Fluid fabric.
    Fluid(FluidNetwork),
}

impl Fabric {
    /// Creates the fabric selected by `model`.
    pub fn new(model: FabricModel, num_nodes: usize, cfg: NetConfig) -> Fabric {
        match model {
            FabricModel::SerialFifo => Fabric::Fifo(Network::new(num_nodes, cfg)),
            FabricModel::FairShare => Fabric::Fluid(FluidNetwork::new(num_nodes, cfg)),
        }
    }

    /// Submits a transfer (see the variants' docs for semantics).
    #[inline]
    pub fn submit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId {
        match self {
            Fabric::Fifo(n) => n.submit(now, src, dst, bytes, tag),
            Fabric::Fluid(n) => n.submit(now, src, dst, bytes, tag),
        }
    }

    /// Earliest instant anything changes.
    #[inline]
    pub fn next_event_time(&self) -> SimTime {
        match self {
            Fabric::Fifo(n) => n.next_event_time(),
            Fabric::Fluid(n) => n.next_event_time(),
        }
    }

    /// Processes everything up to `now`.
    pub fn advance(&mut self, now: SimTime) -> Vec<NetEvent> {
        match self {
            Fabric::Fifo(n) => n.advance(now),
            Fabric::Fluid(n) => n.advance(now),
        }
    }

    /// Like [`Self::advance`] but appends into a caller-provided buffer.
    #[inline]
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<NetEvent>) {
        match self {
            Fabric::Fifo(n) => n.advance_into(now, out),
            Fabric::Fluid(n) => n.advance_into(now, out),
        }
    }

    /// True when `advance(now)` could change fabric state or emit events;
    /// the event loop skips the call otherwise. The fluid fabric must
    /// still integrate every tick while flows are active (see
    /// [`FluidNetwork::wants_advance`]); the FIFO fabric only changes at
    /// its scheduled release/delivery instants.
    #[inline]
    pub fn wants_advance(&self, now: SimTime) -> bool {
        match self {
            Fabric::Fifo(n) => n.next_event_time() <= now,
            Fabric::Fluid(n) => n.wants_advance(now),
        }
    }

    /// Total payload bytes delivered so far.
    pub fn bytes_delivered(&self) -> u64 {
        match self {
            Fabric::Fifo(n) => n.bytes_delivered(),
            Fabric::Fluid(n) => n.bytes_delivered(),
        }
    }

    /// Transfers currently occupying wires.
    pub fn in_flight(&self) -> usize {
        match self {
            Fabric::Fifo(n) => n.in_flight(),
            Fabric::Fluid(n) => n.in_flight(),
        }
    }

    /// Transfers delivered end-to-end so far.
    pub fn transfers_delivered(&self) -> u64 {
        match self {
            Fabric::Fifo(n) => n.transfers_delivered(),
            Fabric::Fluid(n) => n.transfers_delivered(),
        }
    }

    /// Highest number of simultaneously active transfers seen so far.
    pub fn peak_in_flight(&self) -> usize {
        match self {
            Fabric::Fifo(n) => n.peak_in_flight(),
            Fabric::Fluid(n) => n.peak_in_flight(),
        }
    }

    /// Peak port utilisation over `makespan`: the busiest single NIC
    /// direction's busy fraction (FIFO fabric; the fluid fabric does not
    /// track occupancy). Identifies the bottleneck resource of a run.
    pub fn peak_port_utilisation(&self, makespan: bs_sim::SimTime) -> f64 {
        let Fabric::Fifo(n) = self else { return 0.0 };
        if makespan.as_nanos() == 0 {
            return 0.0;
        }
        let m = makespan.as_secs_f64();
        n.uplink_busy()
            .iter()
            .chain(n.downlink_busy())
            .map(|b| b.as_secs_f64() / m)
            .fold(0.0, f64::max)
    }

    /// Starts recording metric series (per-port utilisation, active and
    /// queued transfers). Recording never changes fabric behaviour.
    pub fn enable_telemetry(&mut self, now: SimTime) {
        match self {
            Fabric::Fifo(n) => n.enable_telemetry(now),
            Fabric::Fluid(n) => n.enable_telemetry(now),
        }
    }

    /// Takes the recorded metrics with summaries closed at `now`, or
    /// `None` if telemetry was never enabled. Both disciplines export the
    /// same metric names; FIFO port utilisation is busy/idle (0 or 1),
    /// fluid port utilisation is the allocated-rate fraction.
    pub fn take_metrics(&mut self, now: SimTime) -> Option<bs_telemetry::MetricSet> {
        match self {
            Fabric::Fifo(n) => n.take_metrics(now),
            Fabric::Fluid(n) => n.take_metrics(now),
        }
    }

    /// Starts aggregating NIC utilisation into grid-aligned tumbling
    /// windows of `window` for the scope bus. Recording never changes
    /// fabric behaviour.
    pub fn enable_scope(&mut self, now: SimTime, window: SimTime) {
        match self {
            Fabric::Fifo(n) => n.enable_scope(now, window),
            Fabric::Fluid(n) => n.enable_scope(now, window),
        }
    }

    /// Integrates the scope windows up to `now` and closes the final
    /// partial window.
    pub fn finish_scope(&mut self, now: SimTime) {
        match self {
            Fabric::Fifo(n) => n.finish_scope(now),
            Fabric::Fluid(n) => n.finish_scope(now),
        }
    }

    /// Moves closed scope windows into `out`, oldest first.
    pub fn drain_scope_windows(&mut self, out: &mut Vec<crate::scope::ScopeWindow>) {
        match self {
            Fabric::Fifo(n) => n.drain_scope_windows(out),
            Fabric::Fluid(n) => n.drain_scope_windows(out),
        }
    }

    /// Enables span recording. The FIFO fabric records exclusive wire
    /// occupancies (start → release); the fluid fabric records flow
    /// lifetimes (submit → drain), which may overlap.
    pub fn enable_trace(&mut self) {
        match self {
            Fabric::Fifo(n) => n.enable_trace(),
            Fabric::Fluid(n) => n.enable_trace(),
        }
    }

    /// Drains recorded spans: `(tag, src, dst, start, end)`.
    pub fn take_trace(&mut self) -> Vec<crate::network::WireSpan> {
        match self {
            Fabric::Fifo(n) => n.take_trace(),
            Fabric::Fluid(n) => n.take_trace(),
        }
    }

    /// Enables full-lifecycle transfer recording for causal tracing.
    /// Recording never changes fabric behaviour.
    pub fn enable_xray(&mut self) {
        match self {
            Fabric::Fifo(n) => n.enable_xray(),
            Fabric::Fluid(n) => n.enable_xray(),
        }
    }

    /// Drains recorded transfer lifecycles:
    /// `(tag, src, dst, submitted, wire_start, released, delivered)`.
    /// The fluid fabric starts flows at submission, so its records have
    /// `submitted == wire_start`.
    pub fn take_xray(&mut self) -> Vec<crate::network::WireXrayRecord> {
        match self {
            Fabric::Fifo(n) => n.take_xray(),
            Fabric::Fluid(n) => n.take_xray(),
        }
    }

    /// Starts recording per-NIC-direction active-job sets and occupancy
    /// spans; `job_of` maps a transfer tag to its job index (the cluster
    /// driver passes the tag-namespace extractor). Recording never
    /// changes fabric behaviour.
    pub fn enable_contention(&mut self, now: SimTime, job_of: fn(u64) -> usize) {
        match self {
            Fabric::Fifo(n) => n.enable_contention(now, job_of),
            Fabric::Fluid(n) => n.enable_contention(now, job_of),
        }
    }

    /// Drains the contention recording, or `None` if it was never
    /// enabled.
    pub fn take_contention(&mut self) -> Option<crate::contention::ContentionLog> {
        match self {
            Fabric::Fifo(n) => n.take_contention(),
            Fabric::Fluid(n) => n.take_contention(),
        }
    }

    /// Rescales one NIC direction's capacity to `scale` × nominal at
    /// `now`. In-flight transfers keep their progress: the FIFO fabric
    /// stretches the occupant's remaining occupancy, the fluid fabric
    /// refits all flow rates. Use [`Self::kill_port`] for outages — a
    /// zero scale is rejected.
    pub fn set_port_scale(&mut self, now: SimTime, node: NodeId, up: bool, scale: f64) {
        match self {
            Fabric::Fifo(n) => n.set_port_scale(now, node, up, scale),
            Fabric::Fluid(n) => n.set_port_scale(now, node, up, scale),
        }
    }

    /// Flaps `node` down at `now`, killing the transfers currently on its
    /// ports; returns them so the caller can recover (reclaim credit,
    /// retransmit). Transfers past wire release / drain still deliver.
    pub fn kill_port(&mut self, now: SimTime, node: NodeId) -> Vec<DroppedTransfer> {
        match self {
            Fabric::Fifo(n) => n.kill_port(now, node),
            Fabric::Fluid(n) => n.kill_port(now, node),
        }
    }

    /// Brings `node` back up at `now` and resumes service through it.
    pub fn revive_port(&mut self, now: SimTime, node: NodeId) {
        match self {
            Fabric::Fifo(n) => n.revive_port(now, node),
            Fabric::Fluid(n) => n.revive_port(now, node),
        }
    }

    /// Cancels every pending transfer whose tag matches `pred` — queued,
    /// on the wire, or awaiting delivery — and returns them; no port
    /// goes down. The cluster driver purges a migrating job's traffic
    /// this way.
    pub fn cancel_where(
        &mut self,
        now: SimTime,
        pred: &mut dyn FnMut(u64) -> bool,
    ) -> Vec<DroppedTransfer> {
        match self {
            Fabric::Fifo(n) => n.cancel_where(now, pred),
            Fabric::Fluid(n) => n.cancel_where(now, pred),
        }
    }

    /// Debug helper; see [`Network::debug_stalled`].
    pub fn debug_stalled(&self) -> Vec<(usize, usize, u64, bool, bool)> {
        match self {
            Fabric::Fifo(n) => n.debug_stalled(),
            Fabric::Fluid(_) => Vec::new(),
        }
    }

    /// Transfers submitted but not yet on the wire.
    pub fn queued(&self) -> usize {
        match self {
            Fabric::Fifo(n) => n.queued(),
            // Fluid flows start immediately; nothing ever queues.
            Fabric::Fluid(_) => 0,
        }
    }

    /// Calls `f` with the tag of every pending transfer (queued, on the
    /// wire, or awaiting delivery). Tags may repeat; callers fold the
    /// stream into a set or bitmask. The parallel cluster driver uses
    /// this to find jobs with nothing at stake on the shared fabric.
    pub fn for_each_pending_tag(&self, f: &mut dyn FnMut(u64)) {
        match self {
            Fabric::Fifo(n) => n.for_each_pending_tag(f),
            Fabric::Fluid(n) => n.for_each_pending_tag(f),
        }
    }
}

impl crate::port::NetPort for Fabric {
    #[inline]
    fn submit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId {
        Fabric::submit(self, now, src, dst, bytes, tag)
    }

    #[inline]
    fn next_event_time(&self) -> SimTime {
        Fabric::next_event_time(self)
    }

    #[inline]
    fn wants_advance(&self, now: SimTime) -> bool {
        Fabric::wants_advance(self, now)
    }

    #[inline]
    fn advance_into(&mut self, now: SimTime, out: &mut Vec<NetEvent>) {
        Fabric::advance_into(self, now, out)
    }

    fn set_port_scale(&mut self, now: SimTime, node: NodeId, up: bool, scale: f64) {
        Fabric::set_port_scale(self, now, node, up, scale)
    }

    fn kill_port(&mut self, now: SimTime, node: NodeId) -> Vec<DroppedTransfer> {
        Fabric::kill_port(self, now, node)
    }

    fn revive_port(&mut self, now: SimTime, node: NodeId) {
        Fabric::revive_port(self, now, node)
    }

    fn cancel_where(
        &mut self,
        now: SimTime,
        pred: &mut dyn FnMut(u64) -> bool,
    ) -> Vec<DroppedTransfer> {
        Fabric::cancel_where(self, now, pred)
    }

    fn for_each_pending_tag(&self, f: &mut dyn FnMut(u64)) {
        Fabric::for_each_pending_tag(self, f)
    }

    fn in_flight(&self) -> usize {
        Fabric::in_flight(self)
    }

    fn queued(&self) -> usize {
        Fabric::queued(self)
    }

    fn debug_stalled(&self) -> Vec<(usize, usize, u64, bool, bool)> {
        Fabric::debug_stalled(self)
    }

    fn drain_scope_windows(&mut self, out: &mut Vec<crate::scope::ScopeWindow>) {
        Fabric::drain_scope_windows(self, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;

    /// Both disciplines move the same bytes; the fluid one finishes an
    /// incast no later than FIFO (work conservation), and both report the
    /// identical unloaded single-transfer time.
    #[test]
    fn disciplines_agree_on_unloaded_transfers_and_totals() {
        for model in [FabricModel::SerialFifo, FabricModel::FairShare] {
            let cfg = NetConfig::gbps(8.0, Transport::ideal());
            let mut f = Fabric::new(model, 3, cfg);
            f.submit(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000, 1);
            let mut last = SimTime::ZERO;
            loop {
                let t = f.next_event_time();
                if t.is_never() {
                    break;
                }
                for e in f.advance(t) {
                    if let NetEvent::Delivered(c) = e {
                        last = c.finished_at;
                    }
                }
            }
            assert_eq!(last, SimTime::from_millis(1), "{model:?}");
            assert_eq!(f.bytes_delivered(), 1_000_000);
        }
    }
}
