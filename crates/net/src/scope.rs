//! Grid-aligned tumbling NIC-utilisation windows for the observation bus.
//!
//! bs-telemetry records per-direction utilisation as full time series and
//! summarises them after the run; the scope bus needs the opposite shape
//! — a bounded stream of pre-aggregated windows it can surface *during*
//! the run. [`ScopeUtil`] is fed from the exact same record sites the
//! fabric telemetry uses (FIFO wire start/release/drop, fluid
//! reallocation), so a window's `util_secs` integrates the identical
//! piecewise-constant utilisation function the telemetry series describe:
//! the sum of windowed integrals equals the sum of
//! `TimeSeries::integral_secs` over every port direction (up to float
//! associativity from splitting segments at window boundaries — pinned by
//! proptest in `tests/scope_schema.rs`).
//!
//! Like the telemetry it mirrors, this is recording-only: values flow in,
//! nothing flows back into the allocator.

use bs_sim::SimTime;

/// One closed tumbling window of summed NIC utilisation, over every port
/// direction of the fabric. `util_secs` is the exact integral of summed
/// utilisation over [`start`, `end`); `mean_util` divides it by the
/// window duration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScopeWindow {
    /// Window start (grid-aligned).
    pub start: SimTime,
    /// Window end (grid-aligned, or the finish instant for the final
    /// partial window).
    pub end: SimTime,
    /// Port-seconds of utilisation inside the window.
    pub util_secs: f64,
    /// `util_secs` divided by the window duration.
    pub mean_util: f64,
}

/// Streaming utilisation integrator: tracks one utilisation value per
/// port direction (up `0..n`, down `n..2n`), integrates their sum, and
/// closes a [`ScopeWindow`] every time the clock crosses a grid
/// boundary. Zero-utilisation windows are skipped so idle stretches cost
/// nothing.
#[derive(Clone, Debug)]
pub(crate) struct ScopeUtil {
    /// Window width in nanoseconds (grid anchored at t=0).
    width: u64,
    /// Current utilisation per direction slot.
    vals: Vec<f64>,
    /// Running sum of `vals` (refreshed exactly at window boundaries to
    /// bound float drift).
    load: f64,
    /// Instant the integration has reached.
    last: SimTime,
    /// Index of the open window (`last` is inside it).
    win: u64,
    /// Utilisation-seconds accumulated in the open window.
    acc: f64,
    /// Closed windows awaiting a drain.
    done: Vec<ScopeWindow>,
}

impl ScopeUtil {
    /// An integrator over `slots` directions starting at `now`, with
    /// grid-aligned windows of `width`.
    pub(crate) fn new(now: SimTime, slots: usize, width: SimTime) -> ScopeUtil {
        let width = width.as_nanos().max(1);
        ScopeUtil {
            width,
            vals: vec![0.0; slots],
            load: 0.0,
            last: now,
            win: now.as_nanos() / width,
            acc: 0.0,
            done: Vec::new(),
        }
    }

    /// Integrates the current load up to `now`, closing every window
    /// boundary crossed on the way.
    fn advance(&mut self, now: SimTime) {
        let end = now.as_nanos();
        let mut t = self.last.as_nanos();
        while t < end {
            let boundary = self.win.saturating_add(1).saturating_mul(self.width);
            let stop = boundary.min(end);
            self.acc += self.load * (stop - t) as f64 * 1e-9;
            if stop == boundary {
                self.close(SimTime::from_nanos(boundary));
                self.win += 1;
                // Re-derive the running sum at each boundary so float
                // drift from incremental updates stays window-local.
                self.load = self.vals.iter().sum();
            }
            t = stop;
        }
        self.last = now;
    }

    /// Closes the open window ending at `end`, skipping idle windows.
    fn close(&mut self, end: SimTime) {
        if self.acc > 0.0 {
            let start = SimTime::from_nanos(self.win.saturating_mul(self.width));
            let dur = (end - start).as_secs_f64();
            self.done.push(ScopeWindow {
                start,
                end,
                util_secs: self.acc,
                mean_util: if dur > 0.0 { self.acc / dur } else { 0.0 },
            });
        }
        self.acc = 0.0;
    }

    /// Records direction `slot` switching to utilisation `v` at `now` —
    /// called from the same sites that feed the fabric telemetry series.
    pub(crate) fn record(&mut self, now: SimTime, slot: usize, v: f64) {
        self.advance(now);
        self.load += v - self.vals[slot];
        self.vals[slot] = v;
    }

    /// Integrates to `now` and closes the final partial window.
    pub(crate) fn finish(&mut self, now: SimTime) {
        self.advance(now);
        if now > SimTime::from_nanos(self.win.saturating_mul(self.width)) {
            self.close(now);
        }
    }

    /// Moves every closed window into `out`, oldest first.
    pub(crate) fn drain_into(&mut self, out: &mut Vec<ScopeWindow>) {
        out.append(&mut self.done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn windows_integrate_the_step_function_exactly() {
        let mut u = ScopeUtil::new(SimTime::ZERO, 2, SimTime::from_millis(100));
        u.record(SimTime::from_nanos(10 * MS), 0, 1.0);
        u.record(SimTime::from_nanos(30 * MS), 1, 1.0); // load 2 from 30ms
        u.record(SimTime::from_nanos(50 * MS), 0, 0.0); // load 1 from 50ms
        u.finish(SimTime::from_nanos(250 * MS));
        let mut out = Vec::new();
        u.drain_into(&mut out);
        // Window 0: 20ms@1 + 20ms@2 + 50ms@1 = 0.110 port-seconds.
        // Window 1: 100ms@1. Window 2 (partial to 250ms): 50ms@1.
        assert_eq!(out.len(), 3);
        assert!((out[0].util_secs - 0.110).abs() < 1e-12, "{out:?}");
        assert!((out[1].util_secs - 0.100).abs() < 1e-12);
        assert!((out[2].util_secs - 0.050).abs() < 1e-12);
        assert_eq!(out[2].end, SimTime::from_nanos(250 * MS));
        assert!(
            (out[2].mean_util - 1.0).abs() < 1e-12,
            "partial window mean"
        );
        let total: f64 = out.iter().map(|w| w.util_secs).sum();
        assert!((total - 0.260).abs() < 1e-12);
    }

    #[test]
    fn idle_windows_are_skipped() {
        let mut u = ScopeUtil::new(SimTime::ZERO, 1, SimTime::from_millis(10));
        u.record(SimTime::from_nanos(2 * MS), 0, 1.0);
        u.record(SimTime::from_nanos(4 * MS), 0, 0.0);
        // A long idle gap crossing many boundaries…
        u.record(SimTime::from_secs(2), 0, 1.0);
        u.finish(SimTime::from_secs(2) + SimTime::from_millis(1));
        let mut out = Vec::new();
        u.drain_into(&mut out);
        assert_eq!(out.len(), 2, "only the two busy windows: {out:?}");
        assert_eq!(out[0].start, SimTime::ZERO);
        assert_eq!(out[1].start, SimTime::from_secs(2));
    }
}
