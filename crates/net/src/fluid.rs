//! An alternative fabric model: max-min fair fluid sharing.
//!
//! The default [`crate::Network`] serves each NIC direction strictly FIFO,
//! one message at a time — the paper's §2.2 abstraction of the
//! communication stack, and the right model for reasoning about
//! preemption. Real transports, however, multiplex flows: a worker
//! pushing to four shards runs four connections that share its uplink
//! fairly. This module provides that alternative: every submitted
//! transfer becomes a *flow*, flow rates are the max-min fair allocation
//! under per-port capacities (computed by progressive filling), and rates
//! are recomputed whenever a flow starts or finishes.
//!
//! Per-message costs carry over: the wire-overhead component of θ is
//! charged as extra flow volume (`θ · B` bytes), and the latency
//! component delays delivery after the flow drains, exactly as in the
//! FIFO fabric — so schedulers see the same interface and the same knob
//! semantics, only the sharing discipline differs. The fabric-sensitivity
//! ablation (`tests/fabrics.rs`) compares the two.

use std::cell::Cell;
use std::collections::VecDeque;

use bs_sim::SimTime;
use bs_telemetry::{MetricSet, TimeSeries};

use crate::contention::{ContentionLog, ContentionRecorder};
use crate::network::{
    CompletedTransfer, DroppedTransfer, NetEvent, NodeId, TransferId, WireSpan, WireXrayRecord,
};
use crate::scope::{ScopeUtil, ScopeWindow};
use crate::transport::NetConfig;

/// Fault-injection state, allocated lazily on the first fault hook call
/// so unfaulted runs take exactly the original code paths.
#[derive(Clone, Debug)]
struct FaultState {
    /// Per-port capacity scale (up ports 0..n, down ports n..2n),
    /// 1.0 = nominal. A flapped-down node has both scales forced to zero
    /// in the allocator (its flows were killed; late retransmits toward
    /// it idle at rate 0 until the revive).
    port_scale: Vec<f64>,
    /// Nodes currently flapped down.
    down: Vec<bool>,
}

#[derive(Clone, Debug)]
struct Flow {
    src: NodeId,
    dst: NodeId,
    /// Payload bytes (reported on completion).
    bytes: u64,
    tag: u64,
    /// Remaining flow volume (payload + overhead equivalent), fractional
    /// to avoid drift across many rate changes.
    remaining: f64,
    /// Current max-min fair rate, bytes/sec.
    rate: f64,
    /// Submission instant, recorded for flow-span tracing.
    started_at: SimTime,
}

/// A max-min fair fluid fabric with the same event interface as
/// [`crate::Network`].
#[derive(Clone, Debug)]
pub struct FluidNetwork {
    cfg: NetConfig,
    num_nodes: usize,
    /// Flow slot table, indexed by [`TransferId`]. Slots are recycled via
    /// `free_slots`, so the table length is bounded by the *peak* number
    /// of concurrent flows, not by the total ever submitted.
    flows: Vec<Option<Flow>>,
    /// Recycled slot indices (LIFO).
    free_slots: Vec<u64>,
    active: Vec<TransferId>,
    /// Flows per port in submission order, maintained incrementally
    /// (up ports 0..n, down ports n..2n). Mirrors what `reallocate` used
    /// to rebuild from `active` on every call.
    port_flows: Vec<Vec<TransferId>>,
    /// Deliveries pending after their flow drained: (time, completed).
    deliveries: VecDeque<(SimTime, CompletedTransfer)>,
    /// Last instant `remaining` values were integrated to.
    last_update: SimTime,
    /// Memoised earliest flow-drain instant; `None` means stale. Interior
    /// mutability so `next_event_time(&self)` can fill it lazily; cleared
    /// whenever rates, remaining volumes, or the active set change.
    next_drain: Cell<Option<SimTime>>,
    bytes_delivered: u64,
    transfers_delivered: u64,
    /// High-water mark of concurrently active flows.
    peak_in_flight: usize,
    /// When enabled, completed flow spans: `(tag, src, dst, submit,
    /// drain)`. Unlike the FIFO fabric's exclusive wire occupancies,
    /// fluid spans overlap — each covers a flow's whole lifetime.
    trace: Option<Vec<WireSpan>>,
    /// When enabled, full flow lifecycles for causal tracing. A fluid
    /// flow starts at submission, so submitted == wire-start.
    xray: Option<Vec<WireXrayRecord>>,
    /// Scratch buffers reused across `reallocate`/`advance` calls so the
    /// hot path performs no allocation.
    scratch_frozen: Vec<bool>,
    scratch_port_cap: Vec<f64>,
    scratch_port_live: Vec<u32>,
    scratch_ids: Vec<TransferId>,
    scratch_finished: Vec<TransferId>,
    /// `Some` only while metrics recording is enabled.
    telem: Option<FluidTelemetry>,
    /// `Some` only while the scope bus records NIC-utilisation windows.
    scope: Option<Box<ScopeUtil>>,
    /// `Some` only while link-contention recording is enabled.
    contention: Option<Box<ContentionRecorder>>,
    /// `Some` only once a fault hook has been exercised.
    faults: Option<Box<FaultState>>,
}

/// Metric series for the fluid fabric. Per-port utilisation is the
/// allocated-rate sum over capacity (a fraction in `[0, 1]`), resampled
/// after every reallocation — the exact step function the max-min
/// allocator produces, not a polled approximation.
#[derive(Clone, Debug)]
struct FluidTelemetry {
    /// Up ports `0..n`, down ports `n..2n`, matching `port_flows`.
    port_util: Vec<TimeSeries>,
    /// Concurrently active flows.
    active_flows: TimeSeries,
}

impl FluidNetwork {
    /// Creates a fabric of `num_nodes` duplex NICs.
    pub fn new(num_nodes: usize, cfg: NetConfig) -> Self {
        assert!(num_nodes >= 2, "a network needs at least two nodes");
        FluidNetwork {
            cfg,
            num_nodes,
            flows: Vec::new(),
            free_slots: Vec::new(),
            active: Vec::new(),
            port_flows: vec![Vec::new(); 2 * num_nodes],
            deliveries: VecDeque::new(),
            last_update: SimTime::ZERO,
            next_drain: Cell::new(None),
            bytes_delivered: 0,
            transfers_delivered: 0,
            peak_in_flight: 0,
            trace: None,
            xray: None,
            scratch_frozen: Vec::new(),
            scratch_port_cap: Vec::new(),
            scratch_port_live: Vec::new(),
            scratch_ids: Vec::new(),
            scratch_finished: Vec::new(),
            telem: None,
            scope: None,
            contention: None,
            faults: None,
        }
    }

    /// Starts recording per-port utilisation and active-flow series.
    /// Recording never changes fabric behaviour.
    pub fn enable_telemetry(&mut self, now: SimTime) {
        if self.telem.is_none() {
            let mut zero = TimeSeries::new();
            zero.record(now, 0.0);
            self.telem = Some(FluidTelemetry {
                port_util: vec![zero.clone(); 2 * self.num_nodes],
                active_flows: zero,
            });
        }
    }

    /// Starts aggregating NIC utilisation (allocated-rate fractions) into
    /// grid-aligned tumbling windows of `window` for the scope bus, fed
    /// from the same reallocation instants as the telemetry series.
    /// Recording never changes fabric behaviour.
    ///
    /// One aggregate slot, not one per direction: a window's `util_secs`
    /// sums over every port direction anyway, and each flow contributes
    /// its rate to exactly two slots (source up, destination down), so
    /// integrating `2 * total_rate / cap` directly is the same signal at
    /// a fraction of the per-reallocation cost.
    pub fn enable_scope(&mut self, now: SimTime, window: SimTime) {
        if self.scope.is_none() {
            self.scope = Some(Box::new(ScopeUtil::new(now, 1, window)));
        }
    }

    /// Integrates the scope windows up to `now` and closes the final
    /// partial window (publish by draining afterwards).
    pub fn finish_scope(&mut self, now: SimTime) {
        if let Some(sc) = self.scope.as_mut() {
            sc.finish(now);
        }
    }

    /// Moves closed scope windows into `out`, oldest first.
    pub fn drain_scope_windows(&mut self, out: &mut Vec<ScopeWindow>) {
        if let Some(sc) = self.scope.as_mut() {
            sc.drain_into(out);
        }
    }

    /// Takes the recorded metrics with summaries closed at `now`, or
    /// `None` if telemetry was never enabled.
    pub fn take_metrics(&mut self, now: SimTime) -> Option<MetricSet> {
        let t = self.telem.take()?;
        let n = self.num_nodes;
        let mut set = MetricSet::new();
        set.horizon = now;
        set.counter("transfers_delivered", self.transfers_delivered);
        set.counter("bytes_delivered", self.bytes_delivered);
        set.series("active_transfers", t.active_flows);
        // Fluid flows start transmitting on submission; nothing ever
        // queues. Kept as a constant-zero series so both fabrics export
        // the same metric names.
        let mut zero = TimeSeries::new();
        zero.record(SimTime::ZERO, 0.0);
        set.series("queued_transfers", zero);
        let mut ports = t.port_util.into_iter();
        for i in 0..n {
            set.series(
                format!("nic{i}/up_util"),
                ports.next().expect("up port series"),
            );
        }
        for i in 0..n {
            set.series(
                format!("nic{i}/down_util"),
                ports.next().expect("down port series"),
            );
        }
        Some(set)
    }

    /// Starts recording per-NIC-direction active-job sets and flow
    /// spans; `job_of` maps a transfer tag to its job index. Recording
    /// never changes fabric behaviour.
    pub fn enable_contention(&mut self, now: SimTime, job_of: fn(u64) -> usize) {
        if self.contention.is_none() {
            self.contention = Some(Box::new(ContentionRecorder::new(
                now,
                self.num_nodes,
                job_of,
            )));
        }
    }

    /// Drains the contention recording, or `None` if it was never
    /// enabled.
    pub fn take_contention(&mut self) -> Option<ContentionLog> {
        self.contention.as_mut().map(|c| c.take())
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Total payload bytes delivered so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Transfers delivered end-to-end so far.
    pub fn transfers_delivered(&self) -> u64 {
        self.transfers_delivered
    }

    /// Enables flow-span recording (see [`Self::take_trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Drains the recorded spans: `(tag, src, dst, submit, drain)` per
    /// completed flow, in drain order.
    pub fn take_trace(&mut self) -> Vec<WireSpan> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Enables full-lifecycle flow recording for causal tracing.
    /// Recording never changes fabric behaviour.
    pub fn enable_xray(&mut self) {
        if self.xray.is_none() {
            self.xray = Some(Vec::new());
        }
    }

    /// Drains the recorded flow lifecycles, in drain order.
    pub fn take_xray(&mut self) -> Vec<WireXrayRecord> {
        self.xray.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Number of flows currently transmitting.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Highest number of simultaneously active flows seen so far.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Length of the flow slot table. With slot recycling this is bounded
    /// by [`Self::peak_in_flight`], no matter how many transfers have ever
    /// been submitted — the long-run boundedness tests assert on it.
    pub fn flow_slots(&self) -> usize {
        self.flows.len()
    }

    /// True when no flow is active and no delivery is pending.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.deliveries.is_empty()
    }

    /// Submits a transfer; it starts transmitting immediately at its fair
    /// share.
    pub fn submit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId {
        assert!(src.0 < self.num_nodes, "src {src:?} out of range");
        assert!(dst.0 < self.num_nodes, "dst {dst:?} out of range");
        assert_ne!(src, dst, "loopback transfers are not modelled");
        self.integrate_to(now);
        let overhead_bytes =
            self.cfg.transport.wire_overhead.as_secs_f64() * self.cfg.bytes_per_sec();
        let flow = Flow {
            src,
            dst,
            bytes,
            tag,
            remaining: bytes as f64 + overhead_bytes,
            rate: 0.0,
            started_at: now,
        };
        let id = match self.free_slots.pop() {
            Some(slot) => {
                debug_assert!(self.flows[slot as usize].is_none(), "slot in use");
                self.flows[slot as usize] = Some(flow);
                TransferId(slot)
            }
            None => {
                let id = TransferId(self.flows.len() as u64);
                self.flows.push(Some(flow));
                id
            }
        };
        self.active.push(id);
        self.port_flows[src.0].push(id);
        self.port_flows[self.num_nodes + dst.0].push(id);
        self.peak_in_flight = self.peak_in_flight.max(self.active.len());
        if let Some(c) = self.contention.as_mut() {
            c.on_submit(now, src.0, dst.0, tag);
        }
        self.reallocate();
        id
    }

    /// Earliest instant anything changes: the next flow drain or pending
    /// delivery.
    ///
    /// The drain scan is memoised: flow rates and volumes only change in
    /// `submit`/`advance`, so between state changes the event loop can
    /// poll this in O(1) instead of rescanning every active flow.
    pub fn next_event_time(&self) -> SimTime {
        let delivery = self
            .deliveries
            .front()
            .map(|(d, _)| *d)
            .unwrap_or(SimTime::MAX);
        delivery.min(self.drain_time())
    }

    /// Earliest flow-drain instant, recomputed only when stale.
    fn drain_time(&self) -> SimTime {
        if let Some(t) = self.next_drain.get() {
            return t;
        }
        let mut t = SimTime::MAX;
        for id in &self.active {
            let f = self.flows[id.0 as usize].as_ref().expect("active flow");
            if f.rate > 0.0 {
                // Round the drain ETA *up* to at least 1 ns past the last
                // integration point: a sub-nanosecond residue must not
                // produce a zero-length step (the event loop would spin
                // at the same instant forever).
                let dur = SimTime::from_secs_f64((f.remaining / f.rate).max(0.0))
                    .max(SimTime::from_nanos(1));
                t = t.min(self.last_update + dur);
            }
        }
        self.next_drain.set(Some(t));
        t
    }

    /// True when `advance(now)` could change state or emit events: the
    /// event loop skips the call otherwise. While flows are in flight the
    /// fabric must integrate every tick (the split points of the numeric
    /// integration are part of the deterministic trace), so this only
    /// reports false when nothing is transmitting.
    pub fn wants_advance(&self, now: SimTime) -> bool {
        !self.active.is_empty() || self.next_event_time() <= now
    }

    /// Advances to `now`, draining flows and reporting releases and
    /// deliveries in time order.
    pub fn advance(&mut self, now: SimTime) -> Vec<NetEvent> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    /// Like [`Self::advance`] but appends events into a caller-provided
    /// buffer, so the event loop can reuse one allocation across ticks.
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<NetEvent>) {
        loop {
            let next = self.next_event_time();
            if next > now || next.is_never() {
                break;
            }
            // Deliveries strictly before the next drain fire first.
            if let Some(&(dt, _)) = self.deliveries.front() {
                if dt <= next {
                    let (dt, c) = self.deliveries.pop_front().expect("front exists");
                    debug_assert_eq!(dt, c.finished_at);
                    self.bytes_delivered += c.bytes;
                    self.transfers_delivered += 1;
                    if let Some(rec) = self.contention.as_mut() {
                        rec.on_delivered(dt, c.src.0, c.dst.0, c.tag);
                    }
                    out.push(NetEvent::Delivered(c));
                    continue;
                }
            }
            // Drain flows to `next` and complete the ones that hit zero.
            self.integrate_to(next);
            let latency = self.cfg.transport.latency;
            let mut finished = std::mem::take(&mut self.scratch_finished);
            self.active.retain(|id| {
                let f = self.flows[id.0 as usize].as_ref().expect("active");
                // Sub-byte residue counts as drained (float slop from many
                // rate changes; half a byte is far below any payload).
                if f.remaining <= 0.5 {
                    finished.push(*id);
                    false
                } else {
                    true
                }
            });
            for id in finished.drain(..) {
                let f = self.flows[id.0 as usize].take().expect("finishing flow");
                // Retire the slot and drop the flow from its two port
                // lists (order-preserving, so later reallocations iterate
                // exactly as a rebuild from `active` would).
                self.free_slots.push(id.0);
                self.port_flows[f.src.0].retain(|x| *x != id);
                self.port_flows[self.num_nodes + f.dst.0].retain(|x| *x != id);
                if let Some(trace) = &mut self.trace {
                    trace.push((f.tag, f.src.0, f.dst.0, f.started_at, next));
                }
                if let Some(xray) = &mut self.xray {
                    xray.push((
                        f.tag,
                        f.src.0,
                        f.dst.0,
                        f.started_at,
                        f.started_at,
                        next,
                        next + latency,
                    ));
                }
                if let Some(rec) = self.contention.as_mut() {
                    rec.on_wire(f.src.0, f.dst.0, f.tag, f.bytes, f.started_at, next);
                }
                let done = CompletedTransfer {
                    id,
                    src: f.src,
                    dst: f.dst,
                    bytes: f.bytes,
                    tag: f.tag,
                    finished_at: next,
                };
                out.push(NetEvent::Released(done));
                let mut delivered = done;
                delivered.finished_at = next + latency;
                // Keep deliveries time-ordered (latency is constant, so
                // completion order == delivery order).
                self.deliveries.push_back((next + latency, delivered));
            }
            self.scratch_finished = finished;
            self.reallocate();
        }
        self.integrate_to(now);
    }

    /// Lazily materialises the fault state (all scales 1.0, nothing down).
    fn fault_state(&mut self) -> &mut FaultState {
        let ports = 2 * self.num_nodes;
        let n = self.num_nodes;
        self.faults.get_or_insert_with(|| {
            Box::new(FaultState {
                port_scale: vec![1.0; ports],
                down: vec![false; n],
            })
        })
    }

    /// Rescales one NIC direction's capacity to `scale` × nominal at
    /// `now`; all flow rates are refitted immediately (in-flight flows
    /// keep their accumulated progress). Use [`Self::kill_port`] for
    /// outages — a zero scale is rejected.
    pub fn set_port_scale(&mut self, now: SimTime, node: NodeId, up: bool, scale: f64) {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be finite and > 0 (got {scale}); use kill_port for outages"
        );
        assert!(node.0 < self.num_nodes, "node {node:?} out of range");
        self.integrate_to(now);
        let n = self.num_nodes;
        let port = if up { node.0 } else { n + node.0 };
        self.fault_state().port_scale[port] = scale;
        self.reallocate();
    }

    /// Flaps `node` down at `now`: every active flow through either of
    /// its ports is killed — removed without delivering — and returned so
    /// the caller can recover them (reclaim credit, retransmit). Flows
    /// already drained but awaiting delivery still deliver. New flows
    /// submitted toward the node idle at rate 0 until [`Self::revive_port`].
    pub fn kill_port(&mut self, now: SimTime, node: NodeId) -> Vec<DroppedTransfer> {
        assert!(node.0 < self.num_nodes, "node {node:?} out of range");
        self.integrate_to(now);
        self.fault_state().down[node.0] = true;
        let mut victims = std::mem::take(&mut self.scratch_finished);
        victims.clear();
        victims.extend(self.active.iter().copied().filter(|id| {
            let f = self.flows[id.0 as usize].as_ref().expect("active flow");
            f.src == node || f.dst == node
        }));
        let mut dropped = Vec::with_capacity(victims.len());
        for id in victims.drain(..) {
            let f = self.flows[id.0 as usize].take().expect("victim flow");
            self.active.retain(|x| *x != id);
            self.free_slots.push(id.0);
            self.port_flows[f.src.0].retain(|x| *x != id);
            self.port_flows[self.num_nodes + f.dst.0].retain(|x| *x != id);
            if let Some(trace) = &mut self.trace {
                trace.push((f.tag, f.src.0, f.dst.0, f.started_at, now));
            }
            if let Some(xray) = &mut self.xray {
                // Killed at now; the retransmit shows up as a separate
                // record.
                xray.push((
                    f.tag,
                    f.src.0,
                    f.dst.0,
                    f.started_at,
                    f.started_at,
                    now,
                    now,
                ));
            }
            if let Some(rec) = self.contention.as_mut() {
                rec.on_wire(f.src.0, f.dst.0, f.tag, f.bytes, f.started_at, now);
                rec.on_dropped(now, f.src.0, f.dst.0, f.tag);
            }
            dropped.push(DroppedTransfer {
                tag: f.tag,
                src: f.src,
                dst: f.dst,
                bytes: f.bytes,
            });
        }
        self.scratch_finished = victims;
        self.reallocate();
        dropped
    }

    /// Cancels every pending transfer whose tag matches `pred` at `now`
    /// — actively draining or awaiting delivery — and returns them. No
    /// port goes down: surviving flows refit to the freed capacity. The
    /// cluster driver purges a checkpointing job's traffic this way
    /// before migrating it.
    pub fn cancel_where(
        &mut self,
        now: SimTime,
        pred: &mut dyn FnMut(u64) -> bool,
    ) -> Vec<DroppedTransfer> {
        self.integrate_to(now);
        let mut victims = std::mem::take(&mut self.scratch_finished);
        victims.clear();
        victims.extend(
            self.active
                .iter()
                .copied()
                .filter(|id| pred(self.flows[id.0 as usize].as_ref().expect("active flow").tag)),
        );
        let mut dropped = Vec::with_capacity(victims.len());
        for id in victims.drain(..) {
            let f = self.flows[id.0 as usize].take().expect("victim flow");
            self.active.retain(|x| *x != id);
            self.free_slots.push(id.0);
            self.port_flows[f.src.0].retain(|x| *x != id);
            self.port_flows[self.num_nodes + f.dst.0].retain(|x| *x != id);
            if let Some(trace) = &mut self.trace {
                trace.push((f.tag, f.src.0, f.dst.0, f.started_at, now));
            }
            if let Some(xray) = &mut self.xray {
                xray.push((
                    f.tag,
                    f.src.0,
                    f.dst.0,
                    f.started_at,
                    f.started_at,
                    now,
                    now,
                ));
            }
            if let Some(rec) = self.contention.as_mut() {
                rec.on_wire(f.src.0, f.dst.0, f.tag, f.bytes, f.started_at, now);
                rec.on_dropped(now, f.src.0, f.dst.0, f.tag);
            }
            dropped.push(DroppedTransfer {
                tag: f.tag,
                src: f.src,
                dst: f.dst,
                bytes: f.bytes,
            });
        }
        self.scratch_finished = victims;
        // Drained flows awaiting delivery: their deliveries never fire.
        let mut purged = Vec::new();
        self.deliveries.retain(|(_, c)| {
            if pred(c.tag) {
                purged.push(*c);
                false
            } else {
                true
            }
        });
        for c in purged {
            if let Some(rec) = self.contention.as_mut() {
                rec.on_dropped(now, c.src.0, c.dst.0, c.tag);
            }
            dropped.push(DroppedTransfer {
                tag: c.tag,
                src: c.src,
                dst: c.dst,
                bytes: c.bytes,
            });
        }
        self.reallocate();
        dropped
    }

    /// Brings `node` back up at `now`; stalled flows pick their fair
    /// rates back up. Capacity scales set before or during the outage
    /// persist.
    pub fn revive_port(&mut self, now: SimTime, node: NodeId) {
        assert!(node.0 < self.num_nodes, "node {node:?} out of range");
        self.integrate_to(now);
        self.fault_state().down[node.0] = false;
        self.reallocate();
    }

    /// Integrates `remaining -= rate · dt` for all active flows.
    fn integrate_to(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        self.next_drain.set(None);
        let dt = (now - self.last_update).as_secs_f64();
        for id in &self.active {
            let f = self.flows[id.0 as usize].as_mut().expect("active");
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        self.last_update = now;
    }

    /// Progressive filling: repeatedly find the most-contended port,
    /// freeze its flows at the equal share, remove the port, repeat.
    ///
    /// Runs entirely on persistent state (`port_flows`) and reusable
    /// scratch buffers: cost scales with the *current* number of active
    /// flows and ports, never with the total number of transfers the
    /// fabric has ever carried.
    fn reallocate(&mut self) {
        self.next_drain.set(None);
        let cap = self.cfg.bytes_per_sec();
        // Port index: up ports are 0..n, down ports n..2n.
        let ports = 2 * self.num_nodes;
        self.scratch_port_cap.clear();
        self.scratch_port_cap.resize(ports, cap);
        if let Some(fs) = &self.faults {
            for (p, c) in self.scratch_port_cap.iter_mut().enumerate() {
                let node = p % self.num_nodes;
                *c = if fs.down[node] {
                    0.0
                } else {
                    cap * fs.port_scale[p]
                };
            }
        }
        self.scratch_port_live.clear();
        self.scratch_port_live.resize(ports, 0);
        if self.scratch_frozen.len() < self.flows.len() {
            self.scratch_frozen.resize(self.flows.len(), false);
        }
        // Only active slots are ever read below, so only they need
        // clearing — this keeps the reset O(active), not O(slots).
        for id in &self.active {
            self.scratch_frozen[id.0 as usize] = false;
        }
        // Unfrozen-flow count per port; freezing a flow decrements both
        // ports it traverses, so each round sees the live count without
        // rescanning the port's flow list.
        for (p, flows) in self.port_flows.iter().enumerate() {
            self.scratch_port_live[p] = flows.len() as u32;
        }
        let mut remaining_unfrozen = self.active.len();
        // Total allocated rate, accumulated as flows freeze so the scope
        // hook below never has to rescan the active set.
        let mut total_rate = 0.0;
        let mut assigned = 0usize;
        while remaining_unfrozen > 0 {
            // Bottleneck port: smallest fair share among ports that still
            // carry unfrozen flows.
            let mut best: Option<(f64, usize)> = None;
            for p in 0..ports {
                let live = self.scratch_port_live[p];
                if live == 0 {
                    continue;
                }
                let share = self.scratch_port_cap[p] / live as f64;
                if best.map(|(s, _)| share < s).unwrap_or(true) {
                    best = Some((share, p));
                }
            }
            let Some((share, port)) = best else { break };
            // Freeze that port's unfrozen flows at the share, charging
            // the other port they traverse.
            let mut ids = std::mem::take(&mut self.scratch_ids);
            ids.clear();
            let frozen = &self.scratch_frozen;
            ids.extend(
                self.port_flows[port]
                    .iter()
                    .filter(|id| !frozen[id.0 as usize])
                    .copied(),
            );
            remaining_unfrozen -= ids.len();
            total_rate += share * ids.len() as f64;
            assigned += ids.len();
            for id in ids.drain(..) {
                self.scratch_frozen[id.0 as usize] = true;
                let f = self.flows[id.0 as usize].as_mut().expect("active");
                f.rate = share;
                let (a, b) = (f.src.0, self.num_nodes + f.dst.0);
                let other = if a == port { b } else { a };
                self.scratch_port_cap[other] = (self.scratch_port_cap[other] - share).max(0.0);
                self.scratch_port_live[a] -= 1;
                self.scratch_port_live[b] -= 1;
            }
            self.scratch_port_cap[port] = 0.0;
            self.scratch_ids = ids;
        }
        if let Some(te) = self.telem.as_mut() {
            // `last_update` is the allocation instant: every caller
            // integrates to "now" before reallocating.
            let at = self.last_update;
            for (p, flows) in self.port_flows.iter().enumerate() {
                let rate: f64 = flows
                    .iter()
                    .map(|id| self.flows[id.0 as usize].as_ref().expect("active").rate)
                    .sum();
                te.port_util[p].record(at, rate / cap);
            }
            te.active_flows.record(at, self.active.len() as f64);
        }
        if let Some(sc) = self.scope.as_mut() {
            // Every flow's rate lands on exactly two port directions (see
            // `enable_scope`), so the waterfill's running total is the
            // whole signal. The rescan fallback only covers the defensive
            // break above, where flows may keep an older rate.
            let total = if assigned == self.active.len() {
                total_rate
            } else {
                self.active
                    .iter()
                    .map(|id| self.flows[id.0 as usize].as_ref().expect("active").rate)
                    .sum()
            };
            sc.record(self.last_update, 0, 2.0 * total / cap);
        }
    }

    /// Calls `f` with the tag of every pending transfer — actively
    /// draining or awaiting delivery. Unlike the FIFO fabric's scan, tags
    /// never repeat here (a flow leaves the active set when its delivery
    /// is queued), but callers should not rely on that.
    pub fn for_each_pending_tag(&self, f: &mut dyn FnMut(u64)) {
        for id in &self.active {
            f(self.flows[id.0 as usize].as_ref().expect("active").tag);
        }
        for (_, c) in &self.deliveries {
            f(c.tag);
        }
    }
}

impl crate::port::NetPort for FluidNetwork {
    #[inline]
    fn submit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId {
        FluidNetwork::submit(self, now, src, dst, bytes, tag)
    }

    #[inline]
    fn next_event_time(&self) -> SimTime {
        FluidNetwork::next_event_time(self)
    }

    #[inline]
    fn wants_advance(&self, now: SimTime) -> bool {
        FluidNetwork::wants_advance(self, now)
    }

    #[inline]
    fn advance_into(&mut self, now: SimTime, out: &mut Vec<NetEvent>) {
        FluidNetwork::advance_into(self, now, out)
    }

    fn set_port_scale(&mut self, now: SimTime, node: NodeId, up: bool, scale: f64) {
        FluidNetwork::set_port_scale(self, now, node, up, scale)
    }

    fn kill_port(&mut self, now: SimTime, node: NodeId) -> Vec<DroppedTransfer> {
        FluidNetwork::kill_port(self, now, node)
    }

    fn revive_port(&mut self, now: SimTime, node: NodeId) {
        FluidNetwork::revive_port(self, now, node)
    }

    fn cancel_where(
        &mut self,
        now: SimTime,
        pred: &mut dyn FnMut(u64) -> bool,
    ) -> Vec<DroppedTransfer> {
        FluidNetwork::cancel_where(self, now, pred)
    }

    fn for_each_pending_tag(&self, f: &mut dyn FnMut(u64)) {
        FluidNetwork::for_each_pending_tag(self, f)
    }

    fn in_flight(&self) -> usize {
        FluidNetwork::in_flight(self)
    }

    fn drain_scope_windows(&mut self, out: &mut Vec<ScopeWindow>) {
        FluidNetwork::drain_scope_windows(self, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;

    /// 8 Gbps ideal transport: 1e9 B/s, zero overheads.
    fn net(n: usize) -> FluidNetwork {
        FluidNetwork::new(n, NetConfig::gbps(8.0, Transport::ideal()))
    }

    fn mb(x: u64) -> u64 {
        x * 1_000_000
    }

    fn drain(n: &mut FluidNetwork) -> Vec<(u64, SimTime)> {
        let mut out = Vec::new();
        loop {
            let t = n.next_event_time();
            if t.is_never() {
                break;
            }
            out.extend(n.advance(t).into_iter().filter_map(|e| match e {
                NetEvent::Delivered(c) => Some((c.tag, c.finished_at)),
                NetEvent::Released(_) => None,
            }));
        }
        out
    }

    #[test]
    fn single_flow_gets_the_full_rate() {
        let mut n = net(2);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        let done = drain(&mut n);
        assert_eq!(done, vec![(1, SimTime::from_millis(1))]);
        assert!(n.is_idle());
    }

    #[test]
    fn two_flows_share_a_common_uplink_fairly() {
        let mut n = net(3);
        // Same source, different destinations: uplink is the bottleneck.
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(2), mb(1), 2);
        let done = drain(&mut n);
        // Each at 0.5e9 B/s: both finish at 2 ms (no FIFO serialisation).
        assert_eq!(done.len(), 2);
        for (_, t) in done {
            assert_eq!(t, SimTime::from_millis(2));
        }
    }

    #[test]
    fn departures_speed_up_survivors() {
        let mut n = net(3);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(2), mb(3), 2);
        let done = drain(&mut n);
        // Both run at 0.5 GB/s; flow 1 drains at 2 ms; flow 2 then gets
        // the full rate for its remaining 2 MB: 2 + 2 = 4 ms.
        assert_eq!(done[0], (1, SimTime::from_millis(2)));
        assert_eq!(done[1], (2, SimTime::from_millis(4)));
    }

    #[test]
    fn incast_shares_the_downlink() {
        let mut n = net(5);
        for w in 0..4usize {
            n.submit(SimTime::ZERO, NodeId(w), NodeId(4), mb(1), w as u64);
        }
        let done = drain(&mut n);
        // Four flows at 0.25 GB/s each: all finish at 4 ms — same
        // aggregate as FIFO, but simultaneous.
        assert_eq!(done.len(), 4);
        for (_, t) in &done {
            assert_eq!(*t, SimTime::from_millis(4));
        }
    }

    #[test]
    fn max_min_gives_unbottlenecked_flows_the_leftovers() {
        let mut n = net(4);
        // Flows A (0→2) and B (1→2) share node 2's downlink; flow C (1→3)
        // shares node 1's uplink with B. Max-min: A = B = 0.5 at the
        // downlink; C gets node 1's remaining 0.5.
        n.submit(SimTime::ZERO, NodeId(0), NodeId(2), mb(2), 10);
        n.submit(SimTime::ZERO, NodeId(1), NodeId(2), mb(2), 11);
        n.submit(SimTime::ZERO, NodeId(1), NodeId(3), mb(2), 12);
        // All three at 0.5 GB/s -> all complete at 4 ms.
        let done = drain(&mut n);
        assert_eq!(done.len(), 3);
        for (_, t) in &done {
            assert_eq!(*t, SimTime::from_millis(4));
        }
    }

    #[test]
    fn wire_overhead_charges_extra_volume_and_latency_delays_delivery() {
        let cfg = NetConfig::gbps(
            8.0,
            Transport::custom(
                "t",
                SimTime::from_micros(100),
                SimTime::from_micros(400),
                1.0,
            ),
        );
        let mut n = FluidNetwork::new(2, cfg);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        // Volume = 1 MB + 100 µs · 1e9 B/s = 1.1 MB -> drains at 1.1 ms;
        // delivery 400 µs later.
        let done = drain(&mut n);
        assert_eq!(done, vec![(1, SimTime::from_micros(1_500))]);
    }

    #[test]
    fn staggered_arrival_reallocates_mid_flight() {
        let mut n = net(3);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(2), 1);
        // After 1 ms (1 MB sent), a competitor arrives on the uplink.
        n.advance(SimTime::from_millis(1));
        n.submit(SimTime::from_millis(1), NodeId(0), NodeId(2), mb(1), 2);
        let done = drain(&mut n);
        // Both now at 0.5 GB/s with 1 MB remaining each: finish at 3 ms.
        assert_eq!(done[0].1, SimTime::from_millis(3));
        assert_eq!(done[1].1, SimTime::from_millis(3));
    }

    #[test]
    fn degraded_port_slows_flows_mid_flight() {
        let mut n = net(2);
        // 2 MB at 1 GB/s: would drain at 2 ms.
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(2), 1);
        // At 1 ms (1 MB left) the downlink degrades 4×: the remaining
        // 1 MB trickles at 0.25 GB/s → 4 more ms, drain at 5 ms.
        n.advance(SimTime::from_millis(1));
        n.set_port_scale(SimTime::from_millis(1), NodeId(1), false, 0.25);
        let done = drain(&mut n);
        assert_eq!(done, vec![(1, SimTime::from_millis(5))]);
    }

    #[test]
    fn kill_port_drops_flows_and_revive_resumes_stalled_ones() {
        let mut n = net(3);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(2), mb(2), 1);
        n.submit(SimTime::ZERO, NodeId(1), NodeId(2), mb(2), 2);
        // Incast at 0.5 GB/s each; node 2 flaps at 1 ms with 1.5 MB left
        // in each flow.
        n.advance(SimTime::from_millis(1));
        let dropped = n.kill_port(SimTime::from_millis(1), NodeId(2));
        assert_eq!(dropped.len(), 2);
        assert_eq!(dropped[0].tag, 1);
        assert_eq!(dropped[1].tag, 2);
        assert!(n.is_idle(), "killed flows vacate the fabric");
        // A retransmit submitted during the outage idles at rate 0...
        n.submit(SimTime::from_millis(2), NodeId(0), NodeId(2), mb(1), 3);
        assert!(n.next_event_time().is_never());
        // ...and picks up the full rate on revive at 10 ms.
        n.revive_port(SimTime::from_millis(10), NodeId(2));
        let done = drain(&mut n);
        assert_eq!(done, vec![(3, SimTime::from_millis(11))]);
    }

    #[test]
    fn kill_port_spares_flows_not_touching_the_node() {
        let mut n = net(4);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(1), mb(1), 1);
        n.submit(SimTime::ZERO, NodeId(2), NodeId(3), mb(1), 2);
        let dropped = n.kill_port(SimTime::ZERO, NodeId(1));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].tag, 1);
        let done = drain(&mut n);
        assert_eq!(done, vec![(2, SimTime::from_millis(1))]);
    }

    #[test]
    fn cancel_where_drops_matching_flows_and_refits_survivors() {
        let mut n = net(3);
        n.submit(SimTime::ZERO, NodeId(0), NodeId(2), mb(2), 1);
        n.submit(SimTime::ZERO, NodeId(1), NodeId(2), mb(2), 2);
        // Incast at 0.5 GB/s each; at 1 ms each flow has 1.5 MB left.
        n.advance(SimTime::from_millis(1));
        let dropped = n.cancel_where(SimTime::from_millis(1), &mut |tag| tag == 1);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].tag, 1);
        // The survivor refits to the full rate: 1.5 ms more.
        let done = drain(&mut n);
        assert_eq!(done, vec![(2, SimTime::from_micros(2_500))]);
        assert!(n.is_idle());
    }

    #[test]
    fn conserves_bytes() {
        let mut n = net(4);
        for s in 0..3usize {
            for d in 0..4usize {
                if s != d {
                    n.submit(SimTime::ZERO, NodeId(s), NodeId(d), mb(1), 0);
                }
            }
        }
        drain(&mut n);
        assert_eq!(n.bytes_delivered(), mb(9));
        assert!(n.is_idle());
    }
}
