//! The schema-versioned critical-path report (`critical_path.json`).

use serde::{Serialize, Value};

use bs_sim::SimTime;

use crate::analysis::{analyze, Attribution, Category, IterBreakdown};
use crate::events::XrayLog;

/// Schema version written into every report; bump on breaking shape
/// changes and keep `results/critical_path.schema.json` in step.
/// v2: `Aggregation` splits into `reduce_scatter_ns` + `all_gather_ns`
/// on runs with per-hop ring records; `counts` gains `ring_hops`.
pub const SCHEMA_VERSION: u64 = 2;

/// The committed `critical_path.json` schema, embedded so validation
/// never depends on the working directory. Byte-identity with the
/// committed file is pinned by test.
pub const CRITICAL_PATH_SCHEMA: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/critical_path.schema.json"
));

/// One tensor's share of critical-path time (non-compute segments only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TensorShare {
    /// Tensor (layer) index.
    pub tensor: u32,
    /// Critical-path nanoseconds attributed to this tensor's transfers.
    pub critical_ns: u64,
}

/// Event-count summary, for sanity checks and the smoke job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Partition lifecycle records.
    pub parts: u64,
    /// Engine compute ops.
    pub compute_spans: u64,
    /// Scheduler credit-stall intervals.
    pub stalls: u64,
    /// PS aggregation completions.
    pub aggregations: u64,
    /// Ring all-reduce ops.
    pub ring_ops: u64,
    /// Per-chunk per-hop ring records.
    pub ring_hops: u64,
}

/// The assembled critical-path attribution for one job's run.
#[derive(Clone, Debug)]
pub struct XrayReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Scheduler policy label.
    pub scheduler: String,
    /// Run horizon (job start → last barrier exit).
    pub horizon: SimTime,
    /// Warm-up iterations excluded from `totals`.
    pub warmup: usize,
    /// Per-iteration breakdowns, warm-up included.
    pub iterations: Vec<IterBreakdown>,
    /// Category totals over measured (non-warm-up) iterations.
    pub totals: Attribution,
    /// Wall time of the measured iterations; equals `totals.total_ns()`.
    pub measured_wall_ns: u64,
    /// Tensors by critical-path share, descending (tables print top 10).
    pub tensors: Vec<TensorShare>,
    /// Recorded-event counts.
    pub counts: Counts,
}

impl XrayReport {
    /// Analyzes a log into a report.
    pub fn build(log: &XrayLog) -> XrayReport {
        let iterations = analyze(log);
        let mut totals = Attribution::default();
        let mut measured_wall_ns = 0u64;
        let mut tensor_ns: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for b in iterations.iter().skip(log.warmup) {
            totals.absorb(&b.attribution);
            measured_wall_ns += b.wall_ns();
            for s in &b.segments {
                if let Some(t) = s.tensor {
                    *tensor_ns.entry(t).or_default() += s.end.as_nanos() - s.start.as_nanos();
                }
            }
        }
        let mut tensors: Vec<TensorShare> = tensor_ns
            .into_iter()
            .map(|(tensor, critical_ns)| TensorShare {
                tensor,
                critical_ns,
            })
            .collect();
        tensors.sort_by_key(|t| (std::cmp::Reverse(t.critical_ns), t.tensor));
        XrayReport {
            schema_version: SCHEMA_VERSION,
            scheduler: log.scheduler.clone(),
            horizon: log.end.saturating_sub(log.start),
            warmup: log.warmup,
            iterations,
            totals,
            measured_wall_ns,
            tensors,
            counts: Counts {
                parts: log.parts.len() as u64,
                compute_spans: log.compute.len() as u64,
                stalls: log.stalls.len() as u64,
                aggregations: log.aggs.len() as u64,
                ring_ops: log.ring_ops.len() as u64,
                ring_hops: log.ring_hops.len() as u64,
            },
        }
    }

    /// Mean measured iteration time in nanoseconds (0 if nothing
    /// measured).
    pub fn mean_iter_ns(&self) -> u64 {
        let n = self.iterations.len().saturating_sub(self.warmup) as u64;
        self.measured_wall_ns.checked_div(n).unwrap_or(0)
    }
}

fn attribution_fields(a: &Attribution, out: &mut Vec<(String, Value)>) {
    for c in Category::ALL {
        out.push((format!("{}_ns", c.label()), Value::U64(a.get(c))));
    }
}

impl Serialize for XrayReport {
    fn to_value(&self) -> Value {
        let mut totals = vec![("wall_ns".to_string(), Value::U64(self.measured_wall_ns))];
        attribution_fields(&self.totals, &mut totals);
        let iterations: Vec<Value> = self
            .iterations
            .iter()
            .map(|b| {
                let mut o = vec![
                    ("iter".to_string(), Value::U64(b.iter)),
                    ("start_ns".to_string(), Value::U64(b.start.as_nanos())),
                    ("end_ns".to_string(), Value::U64(b.end.as_nanos())),
                    ("wall_ns".to_string(), Value::U64(b.wall_ns())),
                ];
                attribution_fields(&b.attribution, &mut o);
                Value::Object(o)
            })
            .collect();
        let tensors: Vec<Value> = self
            .tensors
            .iter()
            .map(|t| {
                Value::Object(vec![
                    ("tensor".to_string(), Value::U64(t.tensor as u64)),
                    ("critical_ns".to_string(), Value::U64(t.critical_ns)),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::U64(self.schema_version),
            ),
            ("scheduler".to_string(), Value::Str(self.scheduler.clone())),
            (
                "horizon_us".to_string(),
                Value::F64(self.horizon.as_micros_f64()),
            ),
            ("warmup".to_string(), Value::U64(self.warmup as u64)),
            ("totals".to_string(), Value::Object(totals)),
            ("iterations".to_string(), Value::Array(iterations)),
            ("top_tensors".to_string(), Value::Array(tensors)),
            (
                "counts".to_string(),
                Value::Object(vec![
                    ("parts".to_string(), Value::U64(self.counts.parts)),
                    (
                        "compute_spans".to_string(),
                        Value::U64(self.counts.compute_spans),
                    ),
                    ("stalls".to_string(), Value::U64(self.counts.stalls)),
                    (
                        "aggregations".to_string(),
                        Value::U64(self.counts.aggregations),
                    ),
                    ("ring_ops".to_string(), Value::U64(self.counts.ring_ops)),
                    ("ring_hops".to_string(), Value::U64(self.counts.ring_hops)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ComputeSpan;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn report_totals_exclude_warmup_and_sum_exactly() {
        let log = XrayLog {
            scheduler: "test".into(),
            start: SimTime::ZERO,
            end: us(60),
            warmup: 1,
            marks: vec![us(20), us(40), us(60)],
            compute: (0..3)
                .map(|k| ComputeSpan {
                    worker: 0,
                    iter: k,
                    layer: 0,
                    backward: true,
                    start: us(20 * k),
                    end: us(20 * (k + 1)),
                })
                .collect(),
            ..Default::default()
        };
        let r = XrayReport::build(&log);
        assert_eq!(r.iterations.len(), 3);
        assert_eq!(r.measured_wall_ns, 40_000);
        assert_eq!(r.totals.total_ns(), r.measured_wall_ns);
        assert_eq!(r.mean_iter_ns(), 20_000);
        assert_eq!(r.counts.compute_spans, 3);
    }

    #[test]
    fn report_serialises_with_schema_version() {
        let log = XrayLog {
            scheduler: "test".into(),
            start: SimTime::ZERO,
            end: us(10),
            marks: vec![us(10)],
            ..Default::default()
        };
        let r = XrayReport::build(&log);
        let text = serde_json::to_string_pretty(&r).expect("serialises");
        assert!(text.contains("\"schema_version\": 2"));
        assert!(text.contains("\"totals\""));
        assert!(text.contains("\"credit_wait_ns\""));
        assert!(text.contains("\"reduce_scatter_ns\""));
        assert!(text.contains("\"all_gather_ns\""));
        assert!(text.contains("\"ring_hops\""));
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(parsed.get("counts").is_some());
    }
}
