//! `bs-xray` — causal event tracing and critical-path attribution.
//!
//! PR 3's telemetry answers "how much time was lost"; this crate answers
//! *where and to which tensor*. Subsystems record typed lifecycle events
//! for every CommTask partition — BP-produced → enqueued →
//! credit-granted → wire-start/wire-end → aggregated → update-ready →
//! FP-dependency-released — into an [`XrayLog`]. [`analysis::analyze`]
//! walks the longest dependency chain backward through each iteration
//! window and attributes every nanosecond to one of {compute, wire,
//! credit wait, queue wait, aggregation, barrier}; [`XrayReport`] is the
//! schema-versioned `critical_path.json` the harness writes and tables
//! render from.
//!
//! Recording is off by default and strictly observational: enabling it
//! must not change a single simulation event (pinned by the golden
//! byte-identity tests at the workspace root).

pub mod analysis;
pub mod events;
pub mod report;

pub use analysis::{analyze, Attribution, Category, IterBreakdown, Segment};
pub use events::{
    AggEvent, ComputeSpan, PartRecord, RingHopRecord, RingOp, RingPhase, StallSpan, XrayLog,
};
pub use report::{Counts, TensorShare, XrayReport, CRITICAL_PATH_SCHEMA, SCHEMA_VERSION};
