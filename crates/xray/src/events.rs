//! Typed lifecycle events for the causal run DAG.
//!
//! Every CommTask partition leaves a [`PartRecord`] behind: the full
//! BP-produced → enqueued → credit-granted → wire-start/wire-end →
//! delivered chain, with the aggregation and dependency-release edges
//! recoverable from the surrounding [`XrayLog`] (compute spans, PS
//! aggregation events, ring ops, scheduler stall intervals). The log is
//! recording-only: subsystems append to their own buffers behind
//! `Option<…>` fields and the runtime assembles one `XrayLog` per job at
//! teardown.

use bs_sim::SimTime;

/// One engine compute operation (one forward or backward layer op).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComputeSpan {
    /// Worker rank the op ran on.
    pub worker: usize,
    /// Training iteration the op belongs to.
    pub iter: u64,
    /// Layer index.
    pub layer: u32,
    /// `true` for the backward pass, `false` for forward.
    pub backward: bool,
    /// Op start instant.
    pub start: SimTime,
    /// Op end instant.
    pub end: SimTime,
}

/// The lifecycle of one CommTask partition on one worker.
///
/// Times are filled in as the partition moves through the stack:
/// `produced`/`enqueued`/`granted` by the runtime at the scheduler
/// boundary, the `wire_*` fields by the fabric once the transfer is
/// released (matched back by the partition's unique token). A record
/// whose transfer never completed keeps `wire_seen == false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartRecord {
    /// The packed subtask token (job-local, no job-namespace bits).
    pub token: u64,
    /// Training iteration.
    pub iter: u64,
    /// Worker rank.
    pub worker: usize,
    /// Tensor (layer) index.
    pub tensor: u32,
    /// Partition index within the tensor.
    pub part: u32,
    /// Scheduler lane the item occupied.
    pub lane: usize,
    /// `true` for a PS pull, `false` for a push.
    pub pull: bool,
    /// Payload bytes.
    pub bytes: u64,
    /// When BP produced the gradient (== `enqueued` for pushes; for
    /// pulls, the grant instant that made the pull possible).
    pub produced: SimTime,
    /// When the runtime submitted the item to the scheduler.
    pub enqueued: SimTime,
    /// When the scheduler released the item (credit granted).
    pub granted: SimTime,
    /// When the fabric accepted the transfer.
    pub wire_submit: SimTime,
    /// When bytes started moving on the wire.
    pub wire_start: SimTime,
    /// When the wire was released (last byte sent).
    pub wire_end: SimTime,
    /// When the transfer was delivered end-to-end.
    pub delivered: SimTime,
    /// Whether the wire fields were filled from a fabric record.
    pub wire_seen: bool,
}

impl PartRecord {
    /// A fresh record at the enqueue instant; wire fields unset.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueued_at(
        token: u64,
        iter: u64,
        worker: usize,
        tensor: u32,
        part: u32,
        lane: usize,
        pull: bool,
        bytes: u64,
        now: SimTime,
    ) -> PartRecord {
        PartRecord {
            token,
            iter,
            worker,
            tensor,
            part,
            lane,
            pull,
            bytes,
            produced: now,
            enqueued: now,
            granted: now,
            wire_submit: now,
            wire_start: now,
            wire_end: now,
            delivered: now,
            wire_seen: false,
        }
    }
}

/// One closed credit-stall interval on one scheduler lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallSpan {
    /// Worker rank owning the scheduler.
    pub worker: usize,
    /// Lane index within that scheduler.
    pub lane: usize,
    /// Stall start (lane became credit-blocked).
    pub start: SimTime,
    /// Stall end (credit freed or queue drained).
    pub end: SimTime,
}

/// One parameter-server aggregation completion: the instant a key's
/// partition had been pushed by every worker (sync) or by its sender
/// (async) and pull grants were issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggEvent {
    /// Training iteration.
    pub iter: u64,
    /// Tensor (layer) index.
    pub tensor: u32,
    /// Partition index within the tensor.
    pub part: u32,
    /// Aggregation-complete instant.
    pub at: SimTime,
}

/// One ring all-reduce operation (a fused batch on the collective stream).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingOp {
    /// The batch tag.
    pub tag: u64,
    /// Op start instant.
    pub start: SimTime,
    /// Op end instant.
    pub end: SimTime,
}

/// Which half of the ring algorithm a hop belongs to (mirrors
/// `bs_comm::RingPhase`; this crate stays independent of `bs-comm`, so
/// the runtime converts at log-assembly time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingPhase {
    /// First `n−1` steps: chunks are combined around the ring.
    ReduceScatter,
    /// Last `n−1` steps: reduced chunks are broadcast back.
    AllGather,
}

/// One chunk's traversal of one ring step, per op on the collective
/// stream. Hop windows tile the owning [`RingOp`]'s span exactly
/// (`t_0 == start`, `t_S == end`), which is what lets the analyzer split
/// the op's critical-path time into reduce-scatter and all-gather
/// buckets without breaking the 100% tiling invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingHopRecord {
    /// The batch tag of the owning op.
    pub tag: u64,
    /// Chunk index `0 .. n`.
    pub chunk: u32,
    /// Hop index `0 .. 2(n−1)`.
    pub hop: u32,
    /// Reduce-scatter or all-gather half.
    pub phase: RingPhase,
    /// When the chunk became ready for this hop.
    pub enqueue: SimTime,
    /// When the hop's step window opened.
    pub submit: SimTime,
    /// When the hop's step window closed.
    pub deliver: SimTime,
}

/// The assembled causal event log for one job's run.
#[derive(Clone, Debug, Default)]
pub struct XrayLog {
    /// Scheduler policy label (for the report header).
    pub scheduler: String,
    /// Job start (arrival) instant.
    pub start: SimTime,
    /// Run end (barrier exit of the last iteration).
    pub end: SimTime,
    /// Warm-up iterations excluded from measured totals.
    pub warmup: usize,
    /// Iteration boundary marks: `marks[k]` is the barrier-exit instant
    /// of iteration `k` on worker 0.
    pub marks: Vec<SimTime>,
    /// All engine compute ops.
    pub compute: Vec<ComputeSpan>,
    /// All partition lifecycle records.
    pub parts: Vec<PartRecord>,
    /// All scheduler credit-stall intervals.
    pub stalls: Vec<StallSpan>,
    /// All PS aggregation completions.
    pub aggs: Vec<AggEvent>,
    /// All ring all-reduce ops.
    pub ring_ops: Vec<RingOp>,
    /// Per-chunk per-hop lifecycle records, when the ring backend
    /// recorded them (empty logs fall back to coarse [`RingOp`]
    /// attribution — the whole op lands in the aggregation bucket).
    pub ring_hops: Vec<RingHopRecord>,
}
