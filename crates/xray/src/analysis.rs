//! Critical-path extraction and time attribution.
//!
//! For each iteration window `[start_k, end_k]` (between consecutive
//! barrier-exit marks) the analyzer walks the longest dependency chain
//! *backward* from the barrier exit: the compute op that retired the
//! iteration, the transfer whose delivery unblocked it, the aggregation
//! that granted the transfer, the push behind the aggregation, the
//! backward op that produced the push, and so on. Every step tiles the
//! interval between the walk cursor and the predecessor's finish with a
//! [`Segment`] of exactly one [`Category`], so per-iteration category
//! sums equal the iteration wall time *by construction* — there is no
//! residual bucket, only an explicit `Barrier` category for time the
//! recorded events cannot explain (straggler barriers, warm-up skew).

use std::collections::HashMap;

use bs_sim::SimTime;

use crate::events::{PartRecord, XrayLog};

/// Where one slice of critical-path time went.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Forward/backward compute on the critical worker.
    Compute,
    /// Bytes moving on (or latency of) the wire.
    Wire,
    /// Queued behind the scheduler's credit window (lane credit-blocked).
    CreditWait,
    /// Queued but not credit-blocked: scheduler priority queue or fabric
    /// port queue.
    QueueWait,
    /// Waiting for aggregation: PS waiting on other workers' pushes, or
    /// a ring all-reduce op recorded without per-hop detail.
    Aggregation,
    /// The reduce-scatter half of a ring all-reduce (per-hop records
    /// present; otherwise the whole op is [`Category::Aggregation`]).
    ReduceScatter,
    /// The all-gather half of a ring all-reduce.
    AllGather,
    /// Unattributed dependency/barrier time between recorded events.
    Barrier,
}

impl Category {
    /// All categories, in report order.
    pub const ALL: [Category; 8] = [
        Category::Compute,
        Category::Wire,
        Category::CreditWait,
        Category::QueueWait,
        Category::Aggregation,
        Category::ReduceScatter,
        Category::AllGather,
        Category::Barrier,
    ];

    /// Stable snake_case label used in JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::Wire => "wire",
            Category::CreditWait => "credit_wait",
            Category::QueueWait => "queue_wait",
            Category::Aggregation => "aggregation",
            Category::ReduceScatter => "reduce_scatter",
            Category::AllGather => "all_gather",
            Category::Barrier => "barrier",
        }
    }
}

/// One contiguous critical-path slice inside an iteration window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Slice start.
    pub start: SimTime,
    /// Slice end.
    pub end: SimTime,
    /// Attributed category.
    pub category: Category,
    /// The tensor responsible, when the slice belongs to a transfer.
    pub tensor: Option<u32>,
}

/// Integer-nanosecond totals per category; exact by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Nanoseconds of [`Category::Compute`].
    pub compute_ns: u64,
    /// Nanoseconds of [`Category::Wire`].
    pub wire_ns: u64,
    /// Nanoseconds of [`Category::CreditWait`].
    pub credit_wait_ns: u64,
    /// Nanoseconds of [`Category::QueueWait`].
    pub queue_wait_ns: u64,
    /// Nanoseconds of [`Category::Aggregation`].
    pub aggregation_ns: u64,
    /// Nanoseconds of [`Category::ReduceScatter`].
    pub reduce_scatter_ns: u64,
    /// Nanoseconds of [`Category::AllGather`].
    pub all_gather_ns: u64,
    /// Nanoseconds of [`Category::Barrier`].
    pub barrier_ns: u64,
}

impl Attribution {
    /// Adds `ns` to the category's bucket.
    pub fn add(&mut self, category: Category, ns: u64) {
        match category {
            Category::Compute => self.compute_ns += ns,
            Category::Wire => self.wire_ns += ns,
            Category::CreditWait => self.credit_wait_ns += ns,
            Category::QueueWait => self.queue_wait_ns += ns,
            Category::Aggregation => self.aggregation_ns += ns,
            Category::ReduceScatter => self.reduce_scatter_ns += ns,
            Category::AllGather => self.all_gather_ns += ns,
            Category::Barrier => self.barrier_ns += ns,
        }
    }

    /// Reads one category's bucket.
    pub fn get(&self, category: Category) -> u64 {
        match category {
            Category::Compute => self.compute_ns,
            Category::Wire => self.wire_ns,
            Category::CreditWait => self.credit_wait_ns,
            Category::QueueWait => self.queue_wait_ns,
            Category::Aggregation => self.aggregation_ns,
            Category::ReduceScatter => self.reduce_scatter_ns,
            Category::AllGather => self.all_gather_ns,
            Category::Barrier => self.barrier_ns,
        }
    }

    /// Sum over all categories.
    pub fn total_ns(&self) -> u64 {
        Category::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Accumulates another attribution into this one.
    pub fn absorb(&mut self, other: &Attribution) {
        for c in Category::ALL {
            self.add(c, other.get(c));
        }
    }
}

/// One iteration's critical path: the tiling segments and their totals.
#[derive(Clone, Debug)]
pub struct IterBreakdown {
    /// Iteration index.
    pub iter: u64,
    /// Window start (previous barrier exit, or job start).
    pub start: SimTime,
    /// Window end (this iteration's barrier exit).
    pub end: SimTime,
    /// Per-category totals; sums exactly to `end - start`.
    pub attribution: Attribution,
    /// The tiling, earliest-first.
    pub segments: Vec<Segment>,
}

impl IterBreakdown {
    /// Window wall time in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.end.as_nanos() - self.start.as_nanos()
    }
}

/// Analyzes a log into per-iteration critical-path breakdowns.
pub fn analyze(log: &XrayLog) -> Vec<IterBreakdown> {
    let idx = Index::build(log);
    let mut out = Vec::with_capacity(log.marks.len());
    let mut w_start = log.start;
    for (k, &mark) in log.marks.iter().enumerate() {
        if mark < w_start {
            // Degenerate mark ordering; skip rather than underflow.
            continue;
        }
        out.push(analyze_window(log, &idx, k as u64, w_start, mark));
        w_start = mark;
    }
    out
}

/// Pre-built lookup tables over the log.
struct Index {
    /// Per worker: compute-op indices sorted by (end, start).
    compute_by_end: HashMap<usize, Vec<usize>>,
    /// Per worker: pull part indices sorted by delivered.
    pulls_by_delivered: HashMap<usize, Vec<usize>>,
    /// Per worker: push part indices sorted by delivered.
    pushes_by_delivered: HashMap<usize, Vec<usize>>,
    /// (worker, iter, tensor, part) → push part index.
    push_by_key: HashMap<(usize, u64, u32, u32), usize>,
    /// (worker, lane) → stall intervals sorted by start.
    stalls: HashMap<(usize, usize), Vec<(SimTime, SimTime)>>,
    /// Ring-op indices sorted by end.
    rings_by_end: Vec<usize>,
    /// (batch tag, op end) → reduce-scatter/all-gather boundary, derived
    /// from the per-hop records (absent when only coarse ops were
    /// recorded). Keyed by op end as well so a re-used tag cannot smear
    /// one op's boundary onto another.
    ring_rs_end: HashMap<(u64, SimTime), SimTime>,
}

impl Index {
    fn build(log: &XrayLog) -> Index {
        let mut compute_by_end: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, c) in log.compute.iter().enumerate() {
            compute_by_end.entry(c.worker).or_default().push(i);
        }
        for v in compute_by_end.values_mut() {
            v.sort_by_key(|&i| (log.compute[i].end, log.compute[i].start));
        }
        let mut pulls_by_delivered: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut pushes_by_delivered: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut push_by_key = HashMap::new();
        for (i, p) in log.parts.iter().enumerate() {
            if !p.wire_seen {
                continue;
            }
            if p.pull {
                pulls_by_delivered.entry(p.worker).or_default().push(i);
            } else {
                pushes_by_delivered.entry(p.worker).or_default().push(i);
                push_by_key.insert((p.worker, p.iter, p.tensor, p.part), i);
            }
        }
        for v in pulls_by_delivered
            .values_mut()
            .chain(pushes_by_delivered.values_mut())
        {
            v.sort_by_key(|&i| log.parts[i].delivered);
        }
        let mut stalls: HashMap<(usize, usize), Vec<(SimTime, SimTime)>> = HashMap::new();
        for s in &log.stalls {
            stalls
                .entry((s.worker, s.lane))
                .or_default()
                .push((s.start, s.end));
        }
        for v in stalls.values_mut() {
            v.sort();
        }
        let mut rings_by_end: Vec<usize> = (0..log.ring_ops.len()).collect();
        rings_by_end.sort_by_key(|&i| log.ring_ops[i].end);
        // The phase boundary of an op is its latest reduce-scatter hop
        // delivery; hop windows tile the op span, so everything after it
        // up to the op end is all-gather. Hops arrive grouped per op, so
        // one pass per run of equal tags recovers each op's end and
        // boundary.
        let mut ring_rs_end: HashMap<(u64, SimTime), SimTime> = HashMap::new();
        let mut i = 0;
        while i < log.ring_hops.len() {
            let tag = log.ring_hops[i].tag;
            let mut end = SimTime::ZERO;
            let mut rs = SimTime::ZERO;
            let mut j = i;
            while j < log.ring_hops.len() && log.ring_hops[j].tag == tag {
                let h = &log.ring_hops[j];
                // `chunk == 0 && hop == 0` opens a fresh op even when the
                // batch tag repeats back-to-back.
                if j > i && (h.chunk, h.hop) == (0, 0) {
                    break;
                }
                end = end.max(h.deliver);
                if h.phase == crate::events::RingPhase::ReduceScatter {
                    rs = rs.max(h.deliver);
                }
                j += 1;
            }
            ring_rs_end.insert((tag, end), rs);
            i = j;
        }
        Index {
            compute_by_end,
            pulls_by_delivered,
            pushes_by_delivered,
            push_by_key,
            stalls,
            rings_by_end,
            ring_rs_end,
        }
    }

    /// The compute op on `worker` ending exactly at `at`, excluding
    /// `not` (so a zero-duration op cannot be its own predecessor).
    /// Ties pick the latest-starting op.
    fn compute_ending_at(
        &self,
        log: &XrayLog,
        worker: usize,
        at: SimTime,
        not: Option<usize>,
    ) -> Option<usize> {
        let v = self.compute_by_end.get(&worker)?;
        let hi = v.partition_point(|&i| log.compute[i].end <= at);
        v[..hi]
            .iter()
            .rev()
            .take_while(|&&i| log.compute[i].end == at)
            .find(|&&i| Some(i) != not)
            .copied()
    }

    /// The latest compute op on `worker` ending at or before `at`.
    fn compute_before(&self, log: &XrayLog, worker: usize, at: SimTime) -> Option<usize> {
        let v = self.compute_by_end.get(&worker)?;
        let hi = v.partition_point(|&i| log.compute[i].end <= at);
        if hi == 0 {
            None
        } else {
            Some(v[hi - 1])
        }
    }

    /// A part on `worker` delivered exactly at `at`, preferring tensor
    /// `hint` (the layer of the op it unblocked).
    fn part_delivered_at(
        &self,
        log: &XrayLog,
        table: &HashMap<usize, Vec<usize>>,
        worker: usize,
        at: SimTime,
        hint: u32,
    ) -> Option<usize> {
        let v = table.get(&worker)?;
        let hi = v.partition_point(|&i| log.parts[i].delivered <= at);
        let matching = v[..hi]
            .iter()
            .rev()
            .take_while(|&&i| log.parts[i].delivered == at);
        let mut fallback = None;
        for &i in matching {
            if log.parts[i].tensor == hint {
                return Some(i);
            }
            fallback.get_or_insert(i);
        }
        fallback
    }

    /// A ring op ending exactly at `at`.
    fn ring_ending_at(&self, log: &XrayLog, at: SimTime) -> Option<usize> {
        let hi = self
            .rings_by_end
            .partition_point(|&i| log.ring_ops[i].end <= at);
        if hi == 0 {
            return None;
        }
        let i = self.rings_by_end[hi - 1];
        (log.ring_ops[i].end == at).then_some(i)
    }
}

/// Backward walker over one iteration window. Every `emit` moves the
/// cursor down to the segment's (clamped) start, so the produced
/// segments tile `[w_start, w_end]` exactly.
struct Walker<'a> {
    log: &'a XrayLog,
    idx: &'a Index,
    w_start: SimTime,
    cursor: SimTime,
    segs: Vec<Segment>,
    done: bool,
}

impl<'a> Walker<'a> {
    /// Attributes `[from, cursor]` to `category` and moves the cursor to
    /// `from`, clamping both to the window. Non-monotone inputs (bad or
    /// missing data) clamp to zero length instead of corrupting the
    /// tiling.
    fn emit(&mut self, category: Category, from: SimTime, tensor: Option<u32>) {
        let lo = from.min(self.cursor).max(self.w_start);
        if lo < self.cursor {
            self.segs.push(Segment {
                start: lo,
                end: self.cursor,
                category,
                tensor,
            });
            self.cursor = lo;
        }
        if self.cursor <= self.w_start {
            self.done = true;
        }
    }

    /// Attributes the `[enqueued, cursor]` scheduler wait, splitting it
    /// into credit-blocked and plain queueing time using the lane's
    /// recorded stall intervals.
    fn emit_sched_wait(&mut self, worker: usize, lane: usize, enqueued: SimTime, tensor: u32) {
        let t = Some(tensor);
        if let Some(stalls) = self.idx.stalls.get(&(worker, lane)) {
            for &(s_start, s_end) in stalls.iter().rev() {
                if self.done || s_end <= enqueued {
                    break;
                }
                if s_start >= self.cursor {
                    continue;
                }
                self.emit(Category::QueueWait, s_end.min(self.cursor), t);
                self.emit(Category::CreditWait, s_start.max(enqueued), t);
            }
        }
        self.emit(Category::QueueWait, enqueued, t);
    }

    /// Attributes one part's transfer pipeline (delivery latency, wire
    /// occupancy, fabric queue, scheduler wait) and returns with the
    /// cursor at the part's enqueue instant.
    fn emit_part(&mut self, p: &PartRecord) {
        let t = Some(p.tensor);
        if p.wire_seen {
            self.emit(Category::Wire, p.wire_end, t);
            self.emit(Category::Wire, p.wire_start, t);
            self.emit(Category::QueueWait, p.granted, t);
            self.emit_sched_wait(p.worker, p.lane, p.enqueued, p.tensor);
        } else {
            self.emit(Category::QueueWait, p.enqueued, t);
        }
    }

    /// Walks a part chain starting at `part` (cursor already at its
    /// delivered instant) and returns the compute op to continue from,
    /// if the chain reaches one.
    fn walk_part(&mut self, part: usize) -> Option<usize> {
        let p = self.log.parts[part];
        self.emit_part(&p);
        if self.done {
            return None;
        }
        if p.pull {
            // The pull was granted by aggregation, which waited on this
            // worker's own push of the same partition: attribute the gap
            // between the push's delivery and the pull grant to
            // aggregation (stragglers + server-side combine).
            let key = (p.worker, p.iter, p.tensor, p.part);
            if let Some(&push_idx) = self.idx.push_by_key.get(&key) {
                let push = self.log.parts[push_idx];
                self.emit(Category::Aggregation, push.delivered, Some(p.tensor));
                if self.done {
                    return None;
                }
                self.emit_part(&push);
                if self.done {
                    return None;
                }
                return self.compute_producer(&push);
            }
            None
        } else {
            self.compute_producer(&p)
        }
    }

    /// The backward op that produced a push (matched by worker and
    /// retire instant — the engine emits the gradient the moment the
    /// layer's backward op retires).
    fn compute_producer(&self, p: &PartRecord) -> Option<usize> {
        self.idx
            .compute_ending_at(self.log, p.worker, p.produced, None)
    }
}

fn analyze_window(
    log: &XrayLog,
    idx: &Index,
    iter: u64,
    w_start: SimTime,
    w_end: SimTime,
) -> IterBreakdown {
    let mut walker = Walker {
        log,
        idx,
        w_start,
        cursor: w_end,
        segs: Vec::new(),
        done: w_end <= w_start,
    };

    // Anchor: the compute op that retired the iteration on worker 0.
    let mut cur = idx.compute_ending_at(log, 0, w_end, None);
    let max_steps = 4 * (log.compute.len() + log.parts.len() + log.ring_ops.len()) + 64;
    let mut steps = 0usize;
    while !walker.done {
        steps += 1;
        if steps > max_steps {
            break;
        }
        let Some(op_idx) = cur else { break };
        let op = log.compute[op_idx];
        walker.emit(Category::Compute, op.start, None);
        if walker.done {
            break;
        }
        let at = walker.cursor;
        // Predecessor preference: an abutting compute op, then the
        // transfer delivery that unblocked this op, then a ring op, then
        // an unattributed gap back to the previous compute op.
        if let Some(prev) = idx.compute_ending_at(log, op.worker, at, Some(op_idx)) {
            cur = Some(prev);
            continue;
        }
        if let Some(p) =
            idx.part_delivered_at(log, &idx.pulls_by_delivered, op.worker, at, op.layer)
        {
            cur = walker.walk_part(p);
            if cur.is_some() || walker.done {
                continue;
            }
        } else if let Some(p) =
            idx.part_delivered_at(log, &idx.pushes_by_delivered, op.worker, at, op.layer)
        {
            cur = walker.walk_part(p);
            if cur.is_some() || walker.done {
                continue;
            }
        } else if let Some(r) = idx.ring_ending_at(log, at) {
            let ring = log.ring_ops[r];
            // With per-hop records the op splits at the phase boundary;
            // both emissions together cover exactly the span the single
            // coarse Aggregation emission used to, so per-window tiling
            // is unchanged and rs + ag == the old aggregation share.
            if let Some(&rs_end) = idx.ring_rs_end.get(&(ring.tag, ring.end)) {
                walker.emit(Category::AllGather, rs_end, None);
                walker.emit(Category::ReduceScatter, ring.start, None);
            } else {
                walker.emit(Category::Aggregation, ring.start, None);
            }
            if walker.done {
                break;
            }
            cur = idx.compute_before(log, op.worker, walker.cursor);
            if let Some(prev) = cur {
                walker.emit(Category::Barrier, log.compute[prev].end, None);
                continue;
            }
            break;
        }
        // Part chain ended without a producing compute op, or nothing
        // explains this instant: bridge to the previous compute op.
        cur = idx.compute_before(log, op.worker, walker.cursor);
        match cur {
            Some(prev) if log.compute[prev].end < walker.cursor => {
                walker.emit(Category::Barrier, log.compute[prev].end, None);
            }
            Some(_) => {}
            None => break,
        }
    }
    // Whatever the walk could not reach is barrier time.
    walker.emit(Category::Barrier, w_start, None);

    walker.segs.reverse();
    let mut attribution = Attribution::default();
    for s in &walker.segs {
        attribution.add(s.category, s.end.as_nanos() - s.start.as_nanos());
    }
    debug_assert_eq!(
        attribution.total_ns(),
        w_end.as_nanos() - w_start.as_nanos(),
        "critical-path tiling must cover the iteration window exactly"
    );
    IterBreakdown {
        iter,
        start: w_start,
        end: w_end,
        attribution,
        segments: walker.segs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{ComputeSpan, StallSpan};

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    fn compute(
        worker: usize,
        iter: u64,
        layer: u32,
        backward: bool,
        s: u64,
        e: u64,
    ) -> ComputeSpan {
        ComputeSpan {
            worker,
            iter,
            layer,
            backward,
            start: us(s),
            end: us(e),
        }
    }

    /// A single chain of abutting compute ops: the critical path is all
    /// compute and equals the makespan exactly.
    #[test]
    fn single_chain_dag_attributes_everything_to_compute() {
        let log = XrayLog {
            scheduler: "test".into(),
            start: SimTime::ZERO,
            end: us(100),
            marks: vec![us(100)],
            compute: vec![
                compute(0, 0, 2, false, 0, 30),
                compute(0, 0, 1, false, 30, 55),
                compute(0, 0, 0, true, 55, 100),
            ],
            ..Default::default()
        };
        let breakdown = analyze(&log);
        assert_eq!(breakdown.len(), 1);
        let b = &breakdown[0];
        assert_eq!(b.attribution.compute_ns, 100_000);
        assert_eq!(b.attribution.total_ns(), b.wall_ns());
        assert_eq!(b.segments.len(), 3);
        assert!(b.segments.windows(2).all(|w| w[0].end == w[1].start));
    }

    /// A full PS chain: bwd → push (credit wait + wire) → aggregation →
    /// pull (wire) → dependent compute. Categories must tile the window.
    #[test]
    fn ps_chain_attributes_each_stage() {
        let mut push = PartRecord::enqueued_at(1, 0, 0, 2, 0, 0, false, 1000, us(10));
        push.granted = us(18);
        push.wire_submit = us(18);
        push.wire_start = us(20);
        push.wire_end = us(38);
        push.delivered = us(40);
        push.wire_seen = true;
        let mut pull = PartRecord::enqueued_at(2, 0, 0, 2, 0, 1, true, 1000, us(45));
        pull.granted = us(50);
        pull.wire_submit = us(50);
        pull.wire_start = us(50);
        pull.wire_end = us(68);
        pull.delivered = us(70);
        pull.wire_seen = true;
        let log = XrayLog {
            scheduler: "test".into(),
            start: SimTime::ZERO,
            end: us(100),
            marks: vec![us(100)],
            compute: vec![
                compute(0, 0, 2, true, 0, 10),
                compute(0, 0, 0, true, 70, 100),
            ],
            parts: vec![push, pull],
            stalls: vec![StallSpan {
                worker: 0,
                lane: 0,
                start: us(12),
                end: us(18),
            }],
            ..Default::default()
        };
        let b = &analyze(&log)[0];
        let a = &b.attribution;
        assert_eq!(a.total_ns(), 100_000);
        // Compute: [0,10] + [70,100] = 40µs.
        assert_eq!(a.compute_ns, 40_000);
        // Wire: push [20,38]+[38,40], pull [50,68]+[68,70] = 40µs.
        assert_eq!(a.wire_ns, 40_000);
        // Credit wait: the recorded stall [12,18] inside push's wait.
        assert_eq!(a.credit_wait_ns, 6_000);
        // Queue wait: push [10,12] + [18,20], pull [45,50] = 9µs.
        assert_eq!(a.queue_wait_ns, 9_000);
        // Aggregation: push delivered 40 → pull enqueued 45.
        assert_eq!(a.aggregation_ns, 5_000);
        assert_eq!(a.barrier_ns, 0);
    }

    /// A ring op with per-hop records splits into reduce-scatter and
    /// all-gather buckets whose sum equals the coarse aggregation share,
    /// and the window still tiles exactly.
    #[test]
    fn ring_hops_split_aggregation_without_breaking_tiling() {
        use crate::events::{RingHopRecord, RingOp, RingPhase};
        let coarse = XrayLog {
            scheduler: "test".into(),
            start: SimTime::ZERO,
            end: us(100),
            marks: vec![us(100)],
            compute: vec![
                compute(0, 0, 0, true, 0, 10),
                compute(0, 0, 0, false, 70, 100),
            ],
            ring_ops: vec![RingOp {
                tag: 3,
                start: us(10),
                end: us(70),
            }],
            ..Default::default()
        };
        let mut split = coarse.clone();
        split.ring_hops = vec![
            RingHopRecord {
                tag: 3,
                chunk: 0,
                hop: 0,
                phase: RingPhase::ReduceScatter,
                enqueue: us(10),
                submit: us(10),
                deliver: us(45),
            },
            RingHopRecord {
                tag: 3,
                chunk: 0,
                hop: 1,
                phase: RingPhase::AllGather,
                enqueue: us(45),
                submit: us(45),
                deliver: us(70),
            },
        ];
        let a = &analyze(&coarse)[0].attribution;
        let b = &analyze(&split)[0].attribution;
        assert_eq!(a.aggregation_ns, 60_000);
        assert_eq!(a.reduce_scatter_ns + a.all_gather_ns, 0);
        assert_eq!(b.reduce_scatter_ns, 35_000);
        assert_eq!(b.all_gather_ns, 25_000);
        assert_eq!(b.aggregation_ns, 0);
        assert_eq!(
            b.reduce_scatter_ns + b.all_gather_ns + b.aggregation_ns,
            a.reduce_scatter_ns + a.all_gather_ns + a.aggregation_ns,
        );
        assert_eq!(a.compute_ns, b.compute_ns);
        assert_eq!(a.barrier_ns, b.barrier_ns);
        assert_eq!(b.total_ns(), 100_000);
    }

    /// Gaps no recorded event explains become barrier time, never a
    /// panic or a mis-sum.
    #[test]
    fn unexplained_gaps_become_barrier_time() {
        let log = XrayLog {
            scheduler: "test".into(),
            start: SimTime::ZERO,
            end: us(50),
            marks: vec![us(50)],
            compute: vec![
                compute(0, 0, 0, true, 0, 10),
                compute(0, 0, 0, false, 30, 50),
            ],
            ..Default::default()
        };
        let b = &analyze(&log)[0];
        assert_eq!(b.attribution.compute_ns, 30_000);
        assert_eq!(b.attribution.barrier_ns, 20_000);
        assert_eq!(b.attribution.total_ns(), 50_000);
    }

    /// Windows are split on marks and sums stay exact per window.
    #[test]
    fn multiple_iterations_tile_independently() {
        let log = XrayLog {
            scheduler: "test".into(),
            start: SimTime::ZERO,
            end: us(80),
            marks: vec![us(40), us(80)],
            compute: vec![
                compute(0, 0, 0, true, 0, 40),
                compute(0, 1, 0, true, 40, 80),
            ],
            ..Default::default()
        };
        let b = analyze(&log);
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|x| x.attribution.total_ns() == 40_000));
        let cp_total: u64 = b.iter().map(|x| x.attribution.total_ns()).sum();
        assert!(cp_total <= log.end.as_nanos() - log.start.as_nanos());
    }
}
