//! DNN model zoo for the ByteScheduler reproduction.
//!
//! The paper evaluates communication scheduling on VGG16, ResNet-50 and
//! Transformer (plus AlexNet and VGG19 in passing). What the scheduler sees
//! of a model is precisely two per-layer quantities:
//!
//! * the **parameter/gradient tensor size** of each layer (what gets pushed,
//!   pulled or all-reduced), and
//! * the **forward and backward compute time** of each layer (what the
//!   communication must overlap with).
//!
//! This crate reconstructs both from the published architectures: parameter
//! counts follow the real layer shapes (e.g. VGG16's `fc6` is 102.76 M
//! parameters ≈ 411 MB in fp32 — the paper's "largest tensor is over 400 MB"),
//! and compute times are derived from per-layer FLOP counts divided by an
//! effective GPU throughput calibrated per model family to published V100
//! numbers. Absolute times are approximate; the *structure* (which layers are
//! parameter-heavy vs compute-heavy, where the big tensors sit relative to
//! the input) is exact, and that structure is all the scheduling problem
//! depends on.
//!
//! Layer index 0 is the layer nearest the model input: it runs first in
//! forward propagation, produces its gradient last in backward propagation,
//! and therefore gets the *highest* communication priority under the paper's
//! scheduling algorithm.

pub mod builder;
pub mod gpu;
pub mod layer;
pub mod model;
pub mod zoo;

pub use builder::ModelBuilder;
pub use gpu::GpuSpec;
pub use layer::Layer;
pub use model::{DnnModel, SampleUnit};
