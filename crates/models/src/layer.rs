//! A single schedulable DNN layer.

use bs_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Bytes per parameter. The paper trains in fp32.
pub const BYTES_PER_PARAM: u64 = 4;

/// One layer of a DNN as seen by the training system: a gradient/parameter
/// tensor of `param_bytes` plus forward/backward compute times.
///
/// A "layer" here is the paper's scheduling unit: all tensors belonging to
/// the same architectural layer share one priority, so we coalesce a layer's
/// weight and bias into a single tensor (their sizes differ by orders of
/// magnitude and frameworks transmit them back-to-back anyway).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable layer name (e.g. `"conv4_2"`, `"fc6"`).
    pub name: String,
    /// Size of the gradient (== parameter) tensor in bytes.
    pub param_bytes: u64,
    /// Forward-propagation compute time for one mini-batch on one worker.
    pub fp_time: SimTime,
    /// Backward-propagation compute time for one mini-batch on one worker.
    pub bp_time: SimTime,
}

impl Layer {
    /// Constructs a layer directly from sizes and times.
    pub fn new(
        name: impl Into<String>,
        param_bytes: u64,
        fp_time: SimTime,
        bp_time: SimTime,
    ) -> Self {
        Layer {
            name: name.into(),
            param_bytes,
            fp_time,
            bp_time,
        }
    }

    /// Number of parameters (fp32) this layer carries.
    pub fn param_count(&self) -> u64 {
        self.param_bytes / BYTES_PER_PARAM
    }
}

/// FLOPs of a 2-D convolution: `2 · k² · C_in · C_out · H_out · W_out`
/// per sample (multiply + add counted separately).
pub fn conv2d_flops(k: u64, c_in: u64, c_out: u64, h_out: u64, w_out: u64) -> f64 {
    2.0 * (k * k * c_in * c_out * h_out * w_out) as f64
}

/// Parameter count of a 2-D convolution: `k² · C_in · C_out + C_out` (bias).
pub fn conv2d_params(k: u64, c_in: u64, c_out: u64) -> u64 {
    k * k * c_in * c_out + c_out
}

/// FLOPs of a fully-connected layer: `2 · in · out` per sample.
pub fn fc_flops(d_in: u64, d_out: u64) -> f64 {
    2.0 * (d_in * d_out) as f64
}

/// Parameter count of a fully-connected layer: `in · out + out`.
pub fn fc_params(d_in: u64, d_out: u64) -> u64 {
    d_in * d_out + d_out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_fc6_is_the_papers_400mb_tensor() {
        // VGG16 fc6: 25088 -> 4096.
        let params = fc_params(25088, 4096);
        // The commonly quoted 102.76 M figure includes the bias.
        assert_eq!(params, 102_764_544);
        let bytes = params * BYTES_PER_PARAM;
        assert!(bytes > 400_000_000, "fc6 must exceed 400 MB: {bytes}");
    }

    #[test]
    fn conv_formulas_match_hand_computation() {
        // 3x3 conv, 64 -> 128 channels, 112x112 output.
        assert_eq!(conv2d_params(3, 64, 128), 3 * 3 * 64 * 128 + 128);
        let f = conv2d_flops(3, 64, 128, 112, 112);
        assert_eq!(f, 2.0 * (9u64 * 64 * 128 * 112 * 112) as f64);
    }

    #[test]
    fn layer_param_count_round_trips() {
        let l = Layer::new("x", 400, SimTime::ZERO, SimTime::ZERO);
        assert_eq!(l.param_count(), 100);
    }
}
