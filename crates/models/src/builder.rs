//! Fluent construction of [`DnnModel`]s from architectural layer shapes.

use bs_sim::SimTime;

use crate::gpu::GpuSpec;
use crate::layer::{conv2d_flops, conv2d_params, fc_flops, fc_params, Layer, BYTES_PER_PARAM};
use crate::model::{DnnModel, SampleUnit};

/// Builds a [`DnnModel`] layer by layer, converting architectural shapes
/// (convolutions, fully-connected layers) into parameter sizes and
/// FLOP-derived compute times on a given [`GpuSpec`].
///
/// Used both by the built-in zoo and by downstream users defining custom
/// models (see the `custom_model` example).
pub struct ModelBuilder {
    name: String,
    gpu: GpuSpec,
    batch: u64,
    unit: SampleUnit,
    layers: Vec<Layer>,
}

impl ModelBuilder {
    /// Starts a model with the given reporting name, GPU, per-worker batch
    /// size and throughput unit.
    pub fn new(name: impl Into<String>, gpu: GpuSpec, batch: u64, unit: SampleUnit) -> Self {
        assert!(batch > 0, "batch size must be positive");
        ModelBuilder {
            name: name.into(),
            gpu,
            batch,
            unit,
            layers: Vec::new(),
        }
    }

    fn push_from_flops(&mut self, name: String, params: u64, fp_flops_per_sample: f64) {
        let flops = fp_flops_per_sample * self.batch as f64;
        self.layers.push(Layer {
            name,
            param_bytes: params * BYTES_PER_PARAM,
            fp_time: SimTime::from_secs_f64(self.gpu.fp_seconds(flops)),
            bp_time: SimTime::from_secs_f64(self.gpu.bp_seconds(flops)),
        });
    }

    /// Adds a 2-D convolution layer (`k`×`k`, `c_in`→`c_out`, output spatial
    /// size `h_out`×`w_out`).
    pub fn conv2d(
        mut self,
        name: impl Into<String>,
        k: u64,
        c_in: u64,
        c_out: u64,
        h_out: u64,
        w_out: u64,
    ) -> Self {
        self.push_from_flops(
            name.into(),
            conv2d_params(k, c_in, c_out),
            conv2d_flops(k, c_in, c_out, h_out, w_out),
        );
        self
    }

    /// Adds a fully-connected layer `d_in`→`d_out`.
    pub fn fc(mut self, name: impl Into<String>, d_in: u64, d_out: u64) -> Self {
        self.push_from_flops(name.into(), fc_params(d_in, d_out), fc_flops(d_in, d_out));
        self
    }

    /// Adds a layer with explicit parameter count and forward FLOPs per
    /// sample — the escape hatch for embeddings, attention blocks, etc.
    pub fn raw(mut self, name: impl Into<String>, params: u64, fp_flops_per_sample: f64) -> Self {
        self.push_from_flops(name.into(), params, fp_flops_per_sample);
        self
    }

    /// Adds a layer with fully explicit size and times, bypassing the GPU
    /// model. Used by the Figure 2 contrived example, which specifies times
    /// directly.
    pub fn explicit(
        mut self,
        name: impl Into<String>,
        param_bytes: u64,
        fp_time: SimTime,
        bp_time: SimTime,
    ) -> Self {
        self.layers.push(Layer {
            name: name.into(),
            param_bytes,
            fp_time,
            bp_time,
        });
        self
    }

    /// Finalises the model.
    pub fn build(self) -> DnnModel {
        DnnModel::new(self.name, self.layers, self.batch, self.unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_computes_sizes_and_times() {
        let gpu = GpuSpec::custom(1e12, 2.0);
        let m = ModelBuilder::new("t", gpu, 10, SampleUnit::Images)
            .conv2d("c1", 3, 3, 64, 224, 224)
            .fc("f1", 4096, 1000)
            .build();
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.layers[0].param_count(), 3 * 3 * 3 * 64 + 64);
        assert_eq!(m.layers[1].param_count(), 4096 * 1000 + 1000);
        // fc: 2 * 4096 * 1000 flops/sample * 10 samples / 1e12 flops/s.
        let expect_fp = 2.0 * 4096.0 * 1000.0 * 10.0 / 1e12;
        assert!((m.layers[1].fp_time.as_secs_f64() - expect_fp).abs() < 1e-12);
        assert!(
            (m.layers[1].bp_time.as_secs_f64() - 2.0 * expect_fp).abs() < 1e-12,
            "bp should be 2x fp"
        );
    }

    #[test]
    fn explicit_layers_bypass_gpu_model() {
        let gpu = GpuSpec::custom(1e12, 2.0);
        let m = ModelBuilder::new("t", gpu, 1, SampleUnit::Images)
            .explicit("l", 128, SimTime::from_millis(7), SimTime::from_millis(9))
            .build();
        assert_eq!(m.layers[0].fp_time, SimTime::from_millis(7));
        assert_eq!(m.layers[0].bp_time, SimTime::from_millis(9));
        assert_eq!(m.layers[0].param_bytes, 128);
    }
}
