//! GPU compute-throughput model.

use serde::{Deserialize, Serialize};

/// Effective compute throughput of one worker GPU.
///
/// The paper's testbed uses Tesla V100s (15.7 TFLOPS fp32 peak). Real
/// training achieves a model-dependent fraction of peak; rather than model
/// kernels we fold everything into an *effective* sustained throughput per
/// model family, calibrated so that single-GPU iteration times land near
/// published V100 numbers (see the constants on [`GpuSpec`]). The scheduler
/// results depend on the compute/communication *ratio*, which this
/// calibration preserves.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Sustained throughput in FLOP/s used to convert layer FLOPs to time.
    pub effective_flops: f64,
    /// Backward pass costs roughly this multiple of the forward pass
    /// (weight gradients + input gradients ≈ 2 × forward work).
    pub bp_fp_ratio: f64,
}

impl GpuSpec {
    /// V100 running large convolutions (VGG-style).
    /// Calibration: VGG16 at batch 32 runs ≈ 215 img/s on a V100 (fp32,
    /// cuDNN). Against this crate's 2×MAC FLOP convention (VGG16 forward
    /// ≈ 31 GFLOP/sample) that is an effective 20 TFLOP/s — above the naive
    /// fp32 peak because Winograd convolutions do fewer actual operations.
    pub fn v100_vgg() -> Self {
        GpuSpec {
            effective_flops: 20.0e12,
            bp_fp_ratio: 2.0,
        }
    }

    /// V100 running many small kernels (ResNet-style): lower utilisation
    /// per FLOP. Calibration: ResNet-50 at batch 32 ≈ 360 img/s/GPU ⇒
    /// iteration ≈ 89 ms; 2×MAC forward ≈ 8.2 GFLOP/sample ⇒ effective
    /// ≈ 8.8 TFLOP/s.
    pub fn v100_resnet() -> Self {
        GpuSpec {
            effective_flops: 8.8e12,
            bp_fp_ratio: 2.0,
        }
    }

    /// V100 running large GEMMs (Transformer): high utilisation.
    pub fn v100_transformer() -> Self {
        GpuSpec {
            effective_flops: 9.0e12,
            bp_fp_ratio: 2.0,
        }
    }

    /// An explicitly-configured GPU, for custom models and what-if studies.
    pub fn custom(effective_flops: f64, bp_fp_ratio: f64) -> Self {
        assert!(effective_flops > 0.0, "GPU throughput must be positive");
        assert!(bp_fp_ratio > 0.0, "BP/FP ratio must be positive");
        GpuSpec {
            effective_flops,
            bp_fp_ratio,
        }
    }

    /// Seconds to execute `flops` of forward work.
    pub fn fp_seconds(&self, flops: f64) -> f64 {
        flops / self.effective_flops
    }

    /// Seconds to execute the backward pass paired with `flops` of forward
    /// work.
    pub fn bp_seconds(&self, flops: f64) -> f64 {
        self.bp_fp_ratio * flops / self.effective_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bp_is_ratio_times_fp() {
        let g = GpuSpec::custom(1e12, 2.0);
        assert_eq!(g.fp_seconds(1e12), 1.0);
        assert_eq!(g.bp_seconds(1e12), 2.0);
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn zero_throughput_rejected() {
        GpuSpec::custom(0.0, 2.0);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        // ResNet's many small kernels achieve lower effective throughput.
        assert!(GpuSpec::v100_resnet().effective_flops < GpuSpec::v100_vgg().effective_flops);
    }
}
