//! The built-in model zoo: the models used in the paper's evaluation.
//!
//! Every constructor comes in two flavours: a zero-argument version with the
//! paper's defaults (V100-calibrated GPU, the paper's per-GPU batch size) and
//! a `_with(gpu, batch)` version for what-if studies.

mod alexnet;
mod bert;
mod inception;
mod resnet;
mod transformer;
mod vgg;

pub use alexnet::{alexnet, alexnet_with};
pub use bert::{bert_base, bert_base_with};
pub use inception::{inception_v3, inception_v3_with};
pub use resnet::{resnet50, resnet50_with};
pub use transformer::{transformer, transformer_with};
pub use vgg::{vgg16, vgg16_with, vgg19, vgg19_with};

use crate::model::DnnModel;

/// All benchmark models at paper-default settings, for sweep harnesses.
pub fn benchmark_models() -> Vec<DnnModel> {
    vec![vgg16(), resnet50(), transformer()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published parameter counts the zoo must reproduce (within the slack
    /// left by folding batch-norm parameters and grouping conventions).
    #[test]
    fn parameter_counts_match_published_architectures() {
        let cases: [(DnnModel, u64, f64); 5] = [
            (vgg16(), 138_357_544, 0.01),
            (vgg19(), 143_667_240, 0.01),
            (alexnet(), 60_965_224, 0.05),
            (resnet50(), 25_557_032, 0.08),
            // Our Transformer is a big-variant with untied 32k embeddings;
            // target is the sum of its own layer spec (checked exactly in
            // transformer.rs), here just sanity-scale vs transformer-big.
            (transformer(), 213_000_000, 0.18),
        ];
        for (m, published, tol) in cases {
            let got = m.total_params() as f64;
            let rel = (got - published as f64).abs() / published as f64;
            assert!(
                rel <= tol,
                "{}: got {} params, published {} (rel err {:.3})",
                m.name,
                got,
                published,
                rel
            );
        }
    }

    #[test]
    fn layer_counts_are_plausible() {
        assert_eq!(vgg16().num_layers(), 16);
        assert_eq!(vgg19().num_layers(), 19);
        assert_eq!(alexnet().num_layers(), 8);
        assert_eq!(resnet50().num_layers(), 54);
        assert_eq!(transformer().num_layers(), 14);
    }

    #[test]
    fn all_models_have_positive_compute_and_comm() {
        for m in benchmark_models() {
            assert!(m.compute_time().as_nanos() > 0, "{}", m.name);
            assert!(m.total_param_bytes() > 0, "{}", m.name);
            for l in &m.layers {
                assert!(l.param_bytes > 0, "{}:{}", m.name, l.name);
            }
        }
    }

    /// §6.2: at 100 Gbps ResNet-50 is compute-bound while VGG16 and
    /// Transformer are communication-bound. This ratio ordering is what
    /// produces the paper's speed-up ordering, so pin it.
    #[test]
    fn comm_compute_ratios_are_ordered_like_the_paper() {
        let bw = 100e9 / 8.0; // 100 Gbps in bytes/sec
        let r_vgg = vgg16().comm_compute_ratio(bw);
        let r_res = resnet50().comm_compute_ratio(bw);
        let r_trn = transformer().comm_compute_ratio(bw);
        assert!(
            r_res < r_vgg && r_res < r_trn,
            "ResNet50 must be the most compute-bound: vgg={r_vgg:.2} res={r_res:.2} trn={r_trn:.2}"
        );
        assert!(r_res < 0.15, "ResNet50 at 100Gbps should be compute-bound");
        assert!(r_vgg > 0.25, "VGG16 at 100Gbps should be comm-heavy");
        assert!(r_trn > 0.5, "Transformer at 100Gbps should be comm-bound");
    }

    /// The paper quotes VGG16's tensor size spread: smallest 256 B, largest
    /// over 400 MB. Our coalesced layers keep the >400 MB giant (fc6).
    #[test]
    fn vgg16_tensor_spread_matches_paper() {
        let m = vgg16();
        assert!(m.largest_tensor() > 400_000_000);
        assert!(m.smallest_tensor() < 10 * 1024);
    }

    /// Iteration times must land near published V100 throughput (the
    /// calibration promise in `GpuSpec`): VGG16 ~140ms, ResNet-50 ~90ms at
    /// batch 32. Allow wide tolerance — calibration, not benchmarking.
    #[test]
    fn compute_times_are_v100_calibrated() {
        let vgg_ms = vgg16().compute_time().as_millis_f64();
        assert!(
            (90.0..250.0).contains(&vgg_ms),
            "VGG16 iteration {vgg_ms:.1} ms out of calibration range"
        );
        let res_ms = resnet50().compute_time().as_millis_f64();
        assert!(
            (50.0..150.0).contains(&res_ms),
            "ResNet50 iteration {res_ms:.1} ms out of calibration range"
        );
    }
}
