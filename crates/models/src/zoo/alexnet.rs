//! AlexNet (Krizhevsky et al., 2012), ungrouped single-tower variant.
//!
//! Used by the paper's §6.2 side experiment (96 % speed-up on 32 GPUs, MXNet
//! PS RDMA). Like VGG it is dominated by fully-connected layers.

use crate::builder::ModelBuilder;
use crate::gpu::GpuSpec;
use crate::model::{DnnModel, SampleUnit};

/// AlexNet with paper defaults (V100-calibrated GPU, batch 32).
pub fn alexnet() -> DnnModel {
    alexnet_with(GpuSpec::v100_vgg(), 32)
}

/// AlexNet with an explicit GPU and batch size.
pub fn alexnet_with(gpu: GpuSpec, batch: u64) -> DnnModel {
    ModelBuilder::new("AlexNet", gpu, batch, SampleUnit::Images)
        .conv2d("conv1", 11, 3, 96, 55, 55)
        .conv2d("conv2", 5, 96, 256, 27, 27)
        .conv2d("conv3", 3, 256, 384, 13, 13)
        .conv2d("conv4", 3, 384, 384, 13, 13)
        .conv2d("conv5", 3, 384, 256, 13, 13)
        .fc("fc6", 9216, 4096)
        .fc("fc7", 4096, 4096)
        .fc("fc8", 4096, 1000)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_is_near_published() {
        // The canonical 60.97M figure counts the original two-tower grouped
        // convolutions; the ungrouped variant is slightly larger.
        let p = alexnet().total_params();
        assert!((60_000_000..66_000_000).contains(&p), "AlexNet params {p}");
    }

    #[test]
    fn fc_layers_carry_most_parameters() {
        let m = alexnet();
        let fc: u64 = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("fc"))
            .map(|l| l.param_bytes)
            .sum();
        assert!(fc as f64 > 0.9 * m.total_param_bytes() as f64);
    }
}
