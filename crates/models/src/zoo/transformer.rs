//! Transformer (Vaswani et al., 2017), big-model configuration.
//!
//! The paper's sequence model ("Transformer", reported in tokens/sec with a
//! 512-sample batch). We use the big configuration: d_model = 1024,
//! d_ff = 4096, 6 encoder + 6 decoder layers, 32 k vocabulary with untied
//! input embedding and output projection. The two embedding matrices
//! (33.5 M parameters ≈ 134 MB each) bracket the model: the input embedding
//! is layer 0 — the *highest* communication priority and one of the largest
//! tensors, which is exactly the combination where priority scheduling pays
//! off most (its FIFO position would be dead last).

use crate::builder::ModelBuilder;
use crate::gpu::GpuSpec;
use crate::model::{DnnModel, SampleUnit};

/// Model width.
const D_MODEL: u64 = 1024;
/// Feed-forward inner width.
const D_FF: u64 = 4096;
/// Vocabulary size.
const VOCAB: u64 = 32_768;
/// Encoder/decoder depth.
const DEPTH: usize = 6;
/// Typical training sequence length, used for attention FLOPs.
const SEQ_LEN: f64 = 64.0;

/// Transformer with paper defaults (V100-calibrated GPU, batch 512 tokens).
pub fn transformer() -> DnnModel {
    transformer_with(GpuSpec::v100_transformer(), 512)
}

/// Transformer with an explicit GPU and per-worker token batch.
pub fn transformer_with(gpu: GpuSpec, batch_tokens: u64) -> DnnModel {
    let d = D_MODEL;
    let attn_params = 4 * d * d + 4 * d; // Q,K,V,O projections + biases
    let ffn_params = d * D_FF + D_FF + D_FF * d + d;
    // Per-token FLOPs: 2 FLOPs per parameter for the GEMMs, plus the
    // sequence-length-dependent attention score/context terms.
    let attn_flops = 2.0 * (4 * d * d) as f64 + 4.0 * SEQ_LEN * d as f64;
    let ffn_flops = 2.0 * (2 * d * D_FF) as f64;

    let mut b = ModelBuilder::new("Transformer", gpu, batch_tokens, SampleUnit::Tokens)
        // Input embedding: parameter-huge, compute-trivial (table lookup).
        .raw("embed", VOCAB * d, 2.0 * d as f64);
    for i in 0..DEPTH {
        b = b.raw(
            format!("enc{i}"),
            attn_params + ffn_params,
            attn_flops + ffn_flops,
        );
    }
    for i in 0..DEPTH {
        // Decoder adds cross-attention.
        b = b.raw(
            format!("dec{i}"),
            2 * attn_params + ffn_params,
            2.0 * attn_flops + ffn_flops,
        );
    }
    // Output projection + softmax over the vocabulary.
    b.raw("out_proj", d * VOCAB, 2.0 * (d * VOCAB) as f64)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_layer_spec() {
        let m = transformer();
        let d = D_MODEL;
        let attn = 4 * d * d + 4 * d;
        let ffn = d * D_FF + D_FF + D_FF * d + d;
        let expect = VOCAB * d + 6 * (attn + ffn) + 6 * (2 * attn + ffn) + d * VOCAB;
        assert_eq!(m.total_params(), expect);
        // Big-model territory: 200-250M parameters.
        assert!((200_000_000..260_000_000).contains(&m.total_params()));
    }

    #[test]
    fn embedding_is_layer_zero_and_large() {
        let m = transformer();
        assert_eq!(m.layers[0].name, "embed");
        assert!(m.layers[0].param_bytes >= 128 * 1024 * 1024);
        // ... while costing almost nothing to compute forward.
        assert!(m.layers[0].fp_time < m.layers[1].fp_time);
    }

    #[test]
    fn decoder_layers_are_heavier_than_encoder_layers() {
        let m = transformer();
        let enc = m.layers.iter().find(|l| l.name == "enc0").unwrap();
        let dec = m.layers.iter().find(|l| l.name == "dec0").unwrap();
        assert!(dec.param_bytes > enc.param_bytes);
        assert!(dec.fp_time > enc.fp_time);
    }

    #[test]
    fn throughput_unit_is_tokens() {
        assert_eq!(transformer().sample_unit, SampleUnit::Tokens);
        assert_eq!(transformer().batch_per_worker, 512);
    }
}
