//! Inception-v3 (Szegedy et al., 2015).
//!
//! Not in the paper's benchmark trio, but a useful zoo member: like
//! ResNet-50 it is parameter-light and kernel-heavy (~23.8 M parameters
//! over ~94 convolutions), so it predicts small scheduling gains at high
//! bandwidth — a good negative control for downstream users.
//!
//! The factorised inception blocks are encoded at branch granularity
//! (each branch's convolutions are schedulable tensors); exact filter
//! geometry follows the torchvision implementation.

use crate::builder::ModelBuilder;
use crate::gpu::GpuSpec;
use crate::model::{DnnModel, SampleUnit};

/// Inception-v3 with paper-style defaults (V100-calibrated GPU, batch 32).
pub fn inception_v3() -> DnnModel {
    inception_v3_with(GpuSpec::v100_resnet(), 32)
}

/// Inception-v3 with an explicit GPU and batch size.
pub fn inception_v3_with(gpu: GpuSpec, batch: u64) -> DnnModel {
    let mut b = ModelBuilder::new("InceptionV3", gpu, batch, SampleUnit::Images)
        // Stem.
        .conv2d("stem_1", 3, 3, 32, 149, 149)
        .conv2d("stem_2", 3, 32, 32, 147, 147)
        .conv2d("stem_3", 3, 32, 64, 147, 147)
        .conv2d("stem_4", 1, 64, 80, 73, 73)
        .conv2d("stem_5", 3, 80, 192, 71, 71);

    // Three Inception-A blocks at 35x35 (input channels 192/256/288).
    for (i, c_in) in [192u64, 256, 288].into_iter().enumerate() {
        b = b
            .conv2d(format!("a{i}_1x1"), 1, c_in, 64, 35, 35)
            .conv2d(format!("a{i}_5x5a"), 1, c_in, 48, 35, 35)
            .conv2d(format!("a{i}_5x5b"), 5, 48, 64, 35, 35)
            .conv2d(format!("a{i}_3x3a"), 1, c_in, 64, 35, 35)
            .conv2d(format!("a{i}_3x3b"), 3, 64, 96, 35, 35)
            .conv2d(format!("a{i}_3x3c"), 3, 96, 96, 35, 35)
            .conv2d(
                format!("a{i}_pool"),
                1,
                c_in,
                if i == 0 { 32 } else { 64 },
                35,
                35,
            );
    }
    // Reduction-A to 17x17.
    b = b
        .conv2d("redA_3x3", 3, 288, 384, 17, 17)
        .conv2d("redA_dbl_a", 1, 288, 64, 35, 35)
        .conv2d("redA_dbl_b", 3, 64, 96, 35, 35)
        .conv2d("redA_dbl_c", 3, 96, 96, 17, 17);

    // Four Inception-B blocks at 17x17 (7x7 factorised into 1x7/7x1;
    // encoded as 7-wide convs with equivalent parameter counts).
    for (i, c7) in [128u64, 160, 160, 192].into_iter().enumerate() {
        b = b
            .conv2d(format!("b{i}_1x1"), 1, 768, 192, 17, 17)
            .conv2d(format!("b{i}_7a"), 1, 768, c7, 17, 17)
            .raw(
                format!("b{i}_7b"),
                7 * c7 * c7 + c7,
                2.0 * (7 * c7 * c7 * 17 * 17) as f64,
            )
            .raw(
                format!("b{i}_7c"),
                7 * c7 * 192 + 192,
                2.0 * (7 * c7 * 192 * 17 * 17) as f64,
            )
            .conv2d(format!("b{i}_pool"), 1, 768, 192, 17, 17);
    }
    // Reduction-B to 8x8 and two Inception-C blocks.
    b = b
        .conv2d("redB_a", 1, 768, 192, 17, 17)
        .conv2d("redB_b", 3, 192, 320, 8, 8)
        .conv2d("redB_c", 1, 768, 192, 17, 17)
        .conv2d("redB_d", 3, 192, 192, 8, 8);
    for (i, c_in) in [1280u64, 2048].into_iter().enumerate() {
        b = b
            .conv2d(format!("c{i}_1x1"), 1, c_in, 320, 8, 8)
            .conv2d(format!("c{i}_3x3a"), 1, c_in, 384, 8, 8)
            .conv2d(format!("c{i}_3x3b"), 3, 384, 768, 8, 8)
            .conv2d(format!("c{i}_dbl_a"), 1, c_in, 448, 8, 8)
            .conv2d(format!("c{i}_dbl_b"), 3, 448, 384, 8, 8)
            .conv2d(format!("c{i}_dbl_c"), 3, 384, 768, 8, 8)
            .conv2d(format!("c{i}_pool"), 1, c_in, 192, 8, 8);
    }
    b.fc("fc", 2048, 1000).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_is_in_the_published_ballpark() {
        // torchvision inception_v3: 23.8M parameters (our branch-level
        // encoding approximates the factorised 7x7 stacks).
        let p = inception_v3().total_params();
        assert!(
            (20_000_000..30_000_000).contains(&p),
            "InceptionV3 params {p}"
        );
    }

    #[test]
    fn is_compute_bound_like_resnet() {
        let m = inception_v3();
        let bw = 100e9 / 8.0;
        assert!(
            m.comm_compute_ratio(bw) < 0.2,
            "ratio {:.2}",
            m.comm_compute_ratio(bw)
        );
    }

    #[test]
    fn has_many_small_tensors() {
        let m = inception_v3();
        assert!(m.num_layers() > 50);
        assert!(m.largest_tensor() < 20_000_000);
    }
}
