//! BERT-base (Devlin et al., 2018), encoder-only.
//!
//! A post-paper workload that stresses the same mechanisms as the paper's
//! Transformer: a huge embedding at layer 0 (the worst possible FIFO
//! position) over twelve uniform encoder layers. 110 M parameters
//! (~438 MB fp32).

use crate::builder::ModelBuilder;
use crate::gpu::GpuSpec;
use crate::model::{DnnModel, SampleUnit};

/// Hidden width.
const D: u64 = 768;
/// Feed-forward inner width.
const FF: u64 = 3072;
/// WordPiece vocabulary.
const VOCAB: u64 = 30_522;
/// Positions + segments.
const EXTRA_EMB: u64 = 512 + 2;
/// Encoder depth.
const DEPTH: usize = 12;
/// Training sequence length for attention FLOPs.
const SEQ_LEN: f64 = 128.0;

/// BERT-base with paper-style defaults (V100-calibrated GPU, batch 256
/// tokens per GPU).
pub fn bert_base() -> DnnModel {
    bert_base_with(GpuSpec::v100_transformer(), 256)
}

/// BERT-base with an explicit GPU and per-worker token batch.
pub fn bert_base_with(gpu: GpuSpec, batch_tokens: u64) -> DnnModel {
    let attn_params = 4 * D * D + 4 * D;
    let ffn_params = D * FF + FF + FF * D + D;
    let attn_flops = 2.0 * (4 * D * D) as f64 + 4.0 * SEQ_LEN * D as f64;
    let ffn_flops = 2.0 * (2 * D * FF) as f64;

    let mut b = ModelBuilder::new("BERT-base", gpu, batch_tokens, SampleUnit::Tokens).raw(
        "embeddings",
        (VOCAB + EXTRA_EMB) * D,
        2.0 * D as f64,
    );
    for i in 0..DEPTH {
        b = b.raw(
            format!("layer{i}"),
            attn_params + ffn_params,
            attn_flops + ffn_flops,
        );
    }
    // MLM head: dense + decoder tied-ish (kept untied for scheduling).
    b.raw(
        "mlm_head",
        D * D + D * VOCAB,
        2.0 * (D * D + D * VOCAB) as f64,
    )
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_published_bert_base() {
        // Published 110M; ours adds the untied MLM decoder (~24M).
        let p = bert_base().total_params();
        assert!((100_000_000..140_000_000).contains(&p), "BERT params {p}");
    }

    #[test]
    fn embedding_is_the_first_and_a_large_tensor() {
        let m = bert_base();
        assert_eq!(m.layers[0].name, "embeddings");
        assert!(m.layers[0].param_bytes > 90_000_000);
    }

    #[test]
    fn encoder_layers_are_uniform() {
        let m = bert_base();
        let sizes: Vec<u64> = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("layer"))
            .map(|l| l.param_bytes)
            .collect();
        assert_eq!(sizes.len(), 12);
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
    }
}
