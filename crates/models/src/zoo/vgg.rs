//! VGG16 and VGG19 (Simonyan & Zisserman, 2014).
//!
//! These are the paper's flagship communication-bound models: ~138 M / 144 M
//! parameters dominated by three fully-connected layers, with `fc6` alone at
//! 102.76 M parameters (≈ 411 MB in fp32 — the paper's ">400 MB" tensor).

use crate::builder::ModelBuilder;
use crate::gpu::GpuSpec;
use crate::model::{DnnModel, SampleUnit};

/// Paper default batch size per GPU for CNNs.
const DEFAULT_BATCH: u64 = 32;

/// VGG16 with paper defaults (V100-calibrated GPU, batch 32).
pub fn vgg16() -> DnnModel {
    vgg16_with(GpuSpec::v100_vgg(), DEFAULT_BATCH)
}

/// VGG16 with an explicit GPU and batch size.
pub fn vgg16_with(gpu: GpuSpec, batch: u64) -> DnnModel {
    vgg_common("VGG16", gpu, batch, false)
}

/// VGG19 with paper defaults.
pub fn vgg19() -> DnnModel {
    vgg19_with(GpuSpec::v100_vgg(), DEFAULT_BATCH)
}

/// VGG19 with an explicit GPU and batch size.
pub fn vgg19_with(gpu: GpuSpec, batch: u64) -> DnnModel {
    vgg_common("VGG19", gpu, batch, true)
}

fn vgg_common(name: &str, gpu: GpuSpec, batch: u64, deep: bool) -> DnnModel {
    let mut b = ModelBuilder::new(name, gpu, batch, SampleUnit::Images)
        // Block 1: 224x224.
        .conv2d("conv1_1", 3, 3, 64, 224, 224)
        .conv2d("conv1_2", 3, 64, 64, 224, 224)
        // Block 2: 112x112.
        .conv2d("conv2_1", 3, 64, 128, 112, 112)
        .conv2d("conv2_2", 3, 128, 128, 112, 112)
        // Block 3: 56x56.
        .conv2d("conv3_1", 3, 128, 256, 56, 56)
        .conv2d("conv3_2", 3, 256, 256, 56, 56)
        .conv2d("conv3_3", 3, 256, 256, 56, 56);
    if deep {
        b = b.conv2d("conv3_4", 3, 256, 256, 56, 56);
    }
    // Block 4: 28x28.
    b = b
        .conv2d("conv4_1", 3, 256, 512, 28, 28)
        .conv2d("conv4_2", 3, 512, 512, 28, 28)
        .conv2d("conv4_3", 3, 512, 512, 28, 28);
    if deep {
        b = b.conv2d("conv4_4", 3, 512, 512, 28, 28);
    }
    // Block 5: 14x14.
    b = b
        .conv2d("conv5_1", 3, 512, 512, 14, 14)
        .conv2d("conv5_2", 3, 512, 512, 14, 14)
        .conv2d("conv5_3", 3, 512, 512, 14, 14);
    if deep {
        b = b.conv2d("conv5_4", 3, 512, 512, 14, 14);
    }
    // Classifier: 512*7*7 = 25088 flattened features.
    b.fc("fc6", 25088, 4096)
        .fc("fc7", 4096, 4096)
        .fc("fc8", 4096, 1000)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_exact_parameter_count() {
        // Classic figure including biases: 138,357,544.
        assert_eq!(vgg16().total_params(), 138_357_544);
    }

    #[test]
    fn vgg19_exact_parameter_count() {
        assert_eq!(vgg19().total_params(), 143_667_240);
    }

    #[test]
    fn fc6_dominates_the_model() {
        let m = vgg16();
        let fc6 = m.layers.iter().find(|l| l.name == "fc6").unwrap();
        assert!(fc6.param_bytes as f64 > 0.7 * m.largest_tensor() as f64);
        assert_eq!(m.largest_tensor(), fc6.param_bytes);
    }

    #[test]
    fn early_convs_are_compute_heavy_but_parameter_light() {
        let m = vgg16();
        let conv1_2 = &m.layers[1];
        let fc7 = m.layers.iter().find(|l| l.name == "fc7").unwrap();
        assert!(conv1_2.fp_time > fc7.fp_time);
        assert!(conv1_2.param_bytes < fc7.param_bytes / 100);
    }
}
