//! ResNet-50 (He et al., 2016).
//!
//! The paper's compute-bound model: only ~25.5 M parameters spread over ~50
//! convolutions, so at 100 Gbps communication is a small fraction of the
//! iteration and scheduling gains are correspondingly small (§6.2). Each
//! convolution is one schedulable tensor (batch-norm scale/shift parameters
//! are folded into their convolution — they are 0.2 % of the model and
//! frameworks transmit them adjacently).

use crate::builder::ModelBuilder;
use crate::gpu::GpuSpec;
use crate::model::{DnnModel, SampleUnit};

/// ResNet-50 with paper defaults (V100-calibrated GPU, batch 32).
pub fn resnet50() -> DnnModel {
    resnet50_with(GpuSpec::v100_resnet(), 32)
}

/// ResNet-50 with an explicit GPU and batch size.
pub fn resnet50_with(gpu: GpuSpec, batch: u64) -> DnnModel {
    let mut b = ModelBuilder::new("ResNet50", gpu, batch, SampleUnit::Images)
        .conv2d("conv1", 7, 3, 64, 112, 112);

    // (stage name, spatial size, bottleneck width, block count, stage input channels)
    let stages: [(&str, u64, u64, usize, u64); 4] = [
        ("conv2", 56, 64, 3, 64),
        ("conv3", 28, 128, 4, 256),
        ("conv4", 14, 256, 6, 512),
        ("conv5", 7, 512, 3, 1024),
    ];

    for (stage, hw, width, blocks, stage_in) in stages {
        let out = width * 4;
        for blk in 0..blocks {
            let c_in = if blk == 0 { stage_in } else { out };
            if blk == 0 {
                // Projection shortcut for the first block of each stage.
                b = b.conv2d(format!("{stage}_0_down"), 1, c_in, out, hw, hw);
            }
            b = b
                .conv2d(format!("{stage}_{blk}_a"), 1, c_in, width, hw, hw)
                .conv2d(format!("{stage}_{blk}_b"), 3, width, width, hw, hw)
                .conv2d(format!("{stage}_{blk}_c"), 1, width, out, hw, hw);
        }
    }

    b.fc("fc", 2048, 1000).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_is_near_published() {
        // Published 25.557M includes batch-norm; conv+fc alone is ~25.5M.
        let p = resnet50().total_params();
        assert!((23_500_000..26_500_000).contains(&p), "ResNet50 params {p}");
    }

    #[test]
    fn has_54_schedulable_tensors() {
        // 1 stem + 4 downsamples + 16 bottlenecks * 3 convs + 1 fc = 54.
        assert_eq!(resnet50().num_layers(), 54);
    }

    #[test]
    fn no_tensor_is_huge() {
        // ResNet has no VGG-style giant: the largest tensor (fc, 8.2 MB or
        // conv5 3x3, 9.4 MB) is tiny next to VGG's 411 MB fc6.
        let m = resnet50();
        assert!(m.largest_tensor() < 16 * 1024 * 1024);
    }

    #[test]
    fn downsample_layers_only_at_stage_starts() {
        let m = resnet50();
        let downs: Vec<_> = m
            .layers
            .iter()
            .filter(|l| l.name.ends_with("_down"))
            .map(|l| l.name.clone())
            .collect();
        assert_eq!(
            downs,
            vec![
                "conv2_0_down",
                "conv3_0_down",
                "conv4_0_down",
                "conv5_0_down"
            ]
        );
    }
}
