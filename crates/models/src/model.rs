//! The [`DnnModel`] type: an ordered stack of layers plus workload metadata.

use bs_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::layer::Layer;

/// What one "sample" means for a model's throughput metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampleUnit {
    /// CNNs report images/sec.
    Images,
    /// Sequence models report tokens/sec.
    Tokens,
}

impl SampleUnit {
    /// The unit label used in result tables, matching the paper's axes.
    pub fn label(self) -> &'static str {
        match self {
            SampleUnit::Images => "images/sec",
            SampleUnit::Tokens => "tokens/sec",
        }
    }
}

/// A DNN as seen by the distributed training system.
///
/// `layers[0]` is the layer nearest the input. Forward propagation runs
/// layers in index order; backward propagation in reverse. The gradient of
/// layer `i` becomes available when its backward step `b_i` completes, and
/// the *next* iteration's forward step `f_i` needs layer `i`'s updated
/// parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DnnModel {
    /// Model name as used in result tables (e.g. `"VGG16"`).
    pub name: String,
    /// Layers in forward order.
    pub layers: Vec<Layer>,
    /// Samples processed per iteration per worker (mini-batch size).
    pub batch_per_worker: u64,
    /// Throughput unit for reporting.
    pub sample_unit: SampleUnit,
}

impl DnnModel {
    /// Constructs a model, validating that it is non-trivial.
    pub fn new(
        name: impl Into<String>,
        layers: Vec<Layer>,
        batch_per_worker: u64,
        sample_unit: SampleUnit,
    ) -> Self {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        assert!(batch_per_worker > 0, "batch size must be positive");
        DnnModel {
            name: name.into(),
            layers,
            batch_per_worker,
            sample_unit,
        }
    }

    /// Number of layers (== number of schedulable gradient tensors).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total model size in bytes (sum of all gradient tensors).
    pub fn total_param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes).sum()
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Total forward-propagation time for one iteration on one worker.
    pub fn total_fp_time(&self) -> SimTime {
        self.layers
            .iter()
            .fold(SimTime::ZERO, |acc, l| acc + l.fp_time)
    }

    /// Total backward-propagation time for one iteration on one worker.
    pub fn total_bp_time(&self) -> SimTime {
        self.layers
            .iter()
            .fold(SimTime::ZERO, |acc, l| acc + l.bp_time)
    }

    /// Pure-compute iteration time (no communication): `FP + BP`.
    pub fn compute_time(&self) -> SimTime {
        self.total_fp_time() + self.total_bp_time()
    }

    /// Single-worker training speed in samples/sec — the paper's
    /// "linear scaling" reference is this multiplied by the worker count.
    pub fn single_worker_speed(&self) -> f64 {
        self.batch_per_worker as f64 / self.compute_time().as_secs_f64()
    }

    /// The largest gradient tensor in bytes.
    pub fn largest_tensor(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes).max().unwrap_or(0)
    }

    /// The smallest gradient tensor in bytes.
    pub fn smallest_tensor(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes).min().unwrap_or(0)
    }

    /// Communication-to-computation ratio at a given per-worker bandwidth
    /// (bytes/sec): time to ship the whole model once, over compute time.
    /// A quick predictor of how much scheduling can help (§6.2: ResNet-50's
    /// low ratio explains its small gains at 100 Gbps).
    pub fn comm_compute_ratio(&self, bandwidth_bytes_per_sec: f64) -> f64 {
        let comm = self.total_param_bytes() as f64 / bandwidth_bytes_per_sec;
        comm / self.compute_time().as_secs_f64()
    }

    /// Returns a copy with a different per-worker batch size, rescaling
    /// compute times linearly (valid in the large-batch regime used here).
    pub fn with_batch(&self, batch_per_worker: u64) -> DnnModel {
        assert!(batch_per_worker > 0, "batch size must be positive");
        let scale = batch_per_worker as f64 / self.batch_per_worker as f64;
        let layers = self
            .layers
            .iter()
            .map(|l| Layer {
                name: l.name.clone(),
                param_bytes: l.param_bytes,
                fp_time: SimTime::from_secs_f64(l.fp_time.as_secs_f64() * scale),
                bp_time: SimTime::from_secs_f64(l.bp_time.as_secs_f64() * scale),
            })
            .collect();
        DnnModel {
            name: self.name.clone(),
            layers,
            batch_per_worker,
            sample_unit: self.sample_unit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DnnModel {
        DnnModel::new(
            "tiny",
            vec![
                Layer::new("a", 100, SimTime::from_millis(1), SimTime::from_millis(2)),
                Layer::new("b", 300, SimTime::from_millis(3), SimTime::from_millis(4)),
            ],
            32,
            SampleUnit::Images,
        )
    }

    #[test]
    fn aggregates_are_sums() {
        let m = tiny();
        assert_eq!(m.total_param_bytes(), 400);
        assert_eq!(m.total_fp_time(), SimTime::from_millis(4));
        assert_eq!(m.total_bp_time(), SimTime::from_millis(6));
        assert_eq!(m.compute_time(), SimTime::from_millis(10));
        assert_eq!(m.largest_tensor(), 300);
        assert_eq!(m.smallest_tensor(), 100);
    }

    #[test]
    fn single_worker_speed_is_batch_over_compute() {
        let m = tiny();
        assert!((m.single_worker_speed() - 3200.0).abs() < 1e-6);
    }

    #[test]
    fn with_batch_rescales_compute_only() {
        let m = tiny().with_batch(64);
        assert_eq!(m.batch_per_worker, 64);
        assert_eq!(m.total_param_bytes(), 400);
        assert_eq!(m.compute_time(), SimTime::from_millis(20));
        // Speed is unchanged when compute scales linearly with batch.
        assert!((m.single_worker_speed() - 3200.0).abs() < 1e-6);
    }

    #[test]
    fn comm_compute_ratio_scales_inversely_with_bandwidth() {
        let m = tiny();
        let r1 = m.comm_compute_ratio(1e6);
        let r2 = m.comm_compute_ratio(2e6);
        assert!((r1 / r2 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_rejected() {
        DnnModel::new("x", vec![], 1, SampleUnit::Images);
    }
}
